"""Tests for the heron-sim CLI."""

import pytest

from repro import cli


class TestParser:
    def test_figures_command(self, capsys):
        assert cli.main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig14" in out

    def test_unknown_figure(self, capsys):
        assert cli.main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_aliases_resolve(self):
        for alias, target in cli.ALIASES.items():
            assert target in cli.FIGURES

    def test_every_figure_module_importable(self):
        import importlib
        for module_path, _desc in cli.FIGURES.values():
            module = importlib.import_module(module_path)
            assert hasattr(module, "run")
            assert hasattr(module, "check_shapes")

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestDemo:
    def test_demo_runs(self, capsys):
        assert cli.main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "packing plan" in out
        assert "emitted" in out


class TestSubmit:
    def test_submit_local(self, capsys):
        assert cli.main(["submit", "--parallelism", "2",
                         "--seconds", "0.3"]) == 0
        assert "M tuples/min" in capsys.readouterr().out

    def test_submit_acks_yarn_ffd(self, capsys):
        assert cli.main(["submit", "--parallelism", "2", "--acks",
                         "--seconds", "0.3", "--framework", "yarn",
                         "--packing", "ffd"]) == 0
        assert "latency" in capsys.readouterr().out

    def test_submit_aurora(self, capsys):
        assert cli.main(["submit", "--parallelism", "2",
                         "--seconds", "0.2", "--framework",
                         "aurora"]) == 0
