"""Multi-stage topology integration: tuple trees, branching, the Fig. 14
pipeline end-to-end."""

import pytest

from repro.api.component import Bolt, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.topology import TopologyBuilder
from repro.core.heron import HeronCluster
from repro.common.config import Config
from repro.workloads.kafka_redis import kafka_redis_topology


class NumberSpout(Spout):
    outputs = {"default": ["n"]}

    def open(self, context, collector):
        self._next = context.task_id * 1_000_000

    def next_tuple(self, collector):
        collector.emit([self._next])
        self._next += 1


class SplitBolt(Bolt):
    """Emits TWO tuples per input (fan-out: tuple trees grow)."""

    outputs = {"default": ["n"]}

    def execute(self, tup, collector):
        collector.emit([tup[0] * 2])
        collector.emit([tup[0] * 2 + 1])


class SinkBolt(Bolt):
    def __init__(self):
        super().__init__()
        self.seen = 0

    def execute(self, tup, collector):
        self.seen += 1


class DroppingBolt(Bolt):
    """Fails every 5th tuple explicitly."""

    outputs = {"default": ["n"]}

    def __init__(self):
        super().__init__()
        self._count = 0

    def execute(self, tup, collector):
        self._count += 1
        if self._count % 5 == 0:
            collector.fail(tup)
        else:
            collector.emit([tup[0]])


def three_stage(exact=True, middle=SplitBolt):
    builder = TopologyBuilder("pipeline")
    builder.set_spout("numbers", NumberSpout(), parallelism=2)
    builder.set_bolt("middle", middle(), parallelism=2) \
        .shuffle_grouping("numbers")
    builder.set_bolt("sink", SinkBolt(), parallelism=2) \
        .shuffle_grouping("middle")
    builder.set_config(Keys.BATCH_SIZE, 20)
    builder.set_config(Keys.ACKING_ENABLED, True)
    builder.set_config(Keys.ACK_TRACKING, "exact" if exact else "counted")
    builder.set_config(Keys.MAX_SPOUT_PENDING, 100)
    return builder.build()


class TestExactTupleTrees:
    def test_fanout_tree_fully_acked(self):
        """Each root spawns 2 children; the root acks only when the whole
        tree completes — and every root completes."""
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(three_stage(exact=True))
        handle.wait_until_running()
        cluster.run_for(2.0)
        totals = handle.totals()
        assert totals["acked"] > 0
        assert totals["failed"] == 0
        # Fan-out happened: sink saw ~2x what the middle stage consumed.
        snapshot = handle.snapshot()
        assert snapshot["sink"]["executed"] == pytest.approx(
            2 * snapshot["middle"]["executed"], rel=0.1)

    def test_explicit_fail_propagates_to_spout(self):
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(
            three_stage(exact=True, middle=DroppingBolt))
        handle.wait_until_running()
        cluster.run_for(2.0)
        totals = handle.totals()
        assert totals["failed"] > 0
        assert totals["acked"] > 0
        # Roughly one fifth of the roots fail.
        ratio = totals["failed"] / (totals["failed"] + totals["acked"])
        assert 0.1 < ratio < 0.3

    def test_exact_latency_covers_full_tree(self):
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(three_stage(exact=True))
        handle.wait_until_running()
        cluster.run_for(2.0)
        latency = handle.latency_stats()
        assert latency.count > 0
        # Two hops + ack path, each waiting on the 10ms drain cache.
        assert latency.mean > 0.02


class TestKafkaRedisPipeline:
    def test_end_to_end_flow(self):
        config = Config()
        config.set(Keys.SAMPLE_CAP, 16)
        config.set(Keys.BATCH_SIZE, 200)
        topology, broker, redis = kafka_redis_topology(
            events_per_min=3e6, spouts=2, filters=2, aggregators=2,
            sinks=1, config=config)
        cluster = HeronCluster.on_yarn(machines=4)
        handle = cluster.submit_topology(topology)
        handle.wait_until_running()
        cluster.run_for(4.0)

        assert broker.total_fetched > 10_000
        snapshot = handle.snapshot()
        # Filter passes ~40%.
        filtered = snapshot["aggregate"]["executed"] / \
            snapshot["filter"]["executed"]
        assert filtered == pytest.approx(0.4, abs=0.12)
        # Aggregation reduces ~25:1 into Redis.
        assert redis.records_written > 0
        reduction = snapshot["aggregate"]["executed"] / \
            redis.records_written
        assert reduction == pytest.approx(25, rel=0.3)
        assert len(redis.store) > 0
        handle.kill()

    def test_fetch_respects_production_rate(self):
        config = Config().set(Keys.SAMPLE_CAP, 16)
        topology, broker, redis = kafka_redis_topology(
            events_per_min=3e6, spouts=2, filters=2, aggregators=2,
            sinks=1, config=config)
        cluster = HeronCluster.on_yarn(machines=4)
        handle = cluster.submit_topology(topology)
        handle.wait_until_running()
        cluster.run_for(4.0)
        # Cannot fetch more than was produced: 3M/min = 50K/s.
        assert broker.total_fetched <= 50_000 * cluster.now + 1
        assert broker.total_fetched >= 0.7 * 50_000 * (cluster.now - 1.0)
