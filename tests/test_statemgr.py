"""Tests for the State Manager module (both implementations)."""

import pytest

from repro.common.errors import StateError
from repro.statemgr.base import (WatchEventType, normalize_path,
                                 parent_paths)
from repro.statemgr.inmemory import InMemoryStateManager
from repro.statemgr.localfs import LocalFileSystemStateManager
from repro.statemgr.paths import TopologyPaths


@pytest.fixture(params=["inmemory", "localfs"])
def statemgr(request, tmp_path):
    if request.param == "inmemory":
        return InMemoryStateManager()
    return LocalFileSystemStateManager(tmp_path / "state")


class TestPaths:
    def test_normalize(self):
        assert normalize_path("/a//b/c/") == "/a/b/c"

    def test_relative_rejected(self):
        with pytest.raises(StateError):
            normalize_path("a/b")

    def test_traversal_rejected(self):
        with pytest.raises(StateError):
            normalize_path("/a/../b")

    def test_parent_paths(self):
        assert parent_paths("/a/b/c") == ["/a", "/a/b"]
        assert parent_paths("/a") == []


class TestTreeOps:
    def test_create_and_get(self, statemgr):
        statemgr.create("/topologies/wc/topology", b"blob")
        data, version = statemgr.get("/topologies/wc/topology")
        assert data == b"blob"
        assert version == 0

    def test_create_auto_creates_parents(self, statemgr):
        statemgr.create("/a/b/c", b"x")
        assert statemgr.exists("/a")
        assert statemgr.exists("/a/b")

    def test_create_existing_rejected(self, statemgr):
        statemgr.create("/a", b"1")
        with pytest.raises(StateError):
            statemgr.create("/a", b"2")

    def test_set_bumps_version(self, statemgr):
        statemgr.create("/a", b"1")
        assert statemgr.set("/a", b"2") == 1
        assert statemgr.set("/a", b"3") == 2
        assert statemgr.get("/a") == (b"3", 2)

    def test_set_missing_rejected(self, statemgr):
        with pytest.raises(StateError):
            statemgr.set("/missing", b"x")

    def test_set_with_expected_version(self, statemgr):
        statemgr.create("/a", b"1")
        statemgr.set("/a", b"2", expected_version=0)
        with pytest.raises(StateError):
            statemgr.set("/a", b"3", expected_version=0)

    def test_put_upserts(self, statemgr):
        statemgr.put("/a", b"1")
        statemgr.put("/a", b"2")
        assert statemgr.get_data("/a") == b"2"

    def test_delete(self, statemgr):
        statemgr.create("/a", b"1")
        statemgr.delete("/a")
        assert not statemgr.exists("/a")

    def test_delete_with_children_needs_recursive(self, statemgr):
        statemgr.create("/a/b", b"1")
        with pytest.raises(StateError):
            statemgr.delete("/a")
        statemgr.delete("/a", recursive=True)
        assert not statemgr.exists("/a/b")

    def test_delete_missing_rejected(self, statemgr):
        with pytest.raises(StateError):
            statemgr.delete("/missing")

    def test_delete_root_rejected(self, statemgr):
        with pytest.raises(StateError):
            statemgr.delete("/")

    def test_children(self, statemgr):
        statemgr.create("/t/a", b"")
        statemgr.create("/t/b/deep", b"")
        assert statemgr.children("/t") == ["a", "b"]

    def test_children_of_missing_rejected(self, statemgr):
        with pytest.raises(StateError):
            statemgr.children("/missing")

    def test_get_missing_rejected(self, statemgr):
        with pytest.raises(StateError):
            statemgr.get("/missing")


class TestWatches:
    def test_data_watch_fires_on_change(self, statemgr):
        statemgr.create("/a", b"1")
        events = []
        statemgr.watch("/a", events.append)
        statemgr.set("/a", b"2")
        assert [e.type for e in events] == [WatchEventType.CHANGED]

    def test_watch_fires_on_create(self, statemgr):
        events = []
        statemgr.watch("/new", events.append)
        statemgr.create("/new", b"x")
        assert [e.type for e in events] == [WatchEventType.CREATED]

    def test_watch_fires_on_delete(self, statemgr):
        statemgr.create("/a", b"1")
        events = []
        statemgr.watch("/a", events.append)
        statemgr.delete("/a")
        assert [e.type for e in events] == [WatchEventType.DELETED]

    def test_watch_is_one_shot(self, statemgr):
        statemgr.create("/a", b"1")
        events = []
        statemgr.watch("/a", events.append)
        statemgr.set("/a", b"2")
        statemgr.set("/a", b"3")
        assert len(events) == 1

    def test_rearming_inside_callback(self, statemgr):
        statemgr.create("/a", b"1")
        events = []

        def callback(event):
            events.append(event)
            statemgr.watch("/a", callback)

        statemgr.watch("/a", callback)
        statemgr.set("/a", b"2")
        statemgr.set("/a", b"3")
        assert len(events) == 2

    def test_child_watch(self, statemgr):
        statemgr.create("/dir", b"")
        events = []
        statemgr.watch_children("/dir", events.append)
        statemgr.create("/dir/kid", b"")
        assert len(events) == 1

    def test_multiple_watchers_all_fire(self, statemgr):
        statemgr.create("/a", b"1")
        first, second = [], []
        statemgr.watch("/a", first.append)
        statemgr.watch("/a", second.append)
        statemgr.set("/a", b"2")
        assert len(first) == len(second) == 1


class TestSessions:
    def test_ephemeral_deleted_on_close(self, statemgr):
        session = statemgr.session()
        session.create_ephemeral("/tmaster", b"host:port")
        assert statemgr.exists("/tmaster")
        session.close()
        assert not statemgr.exists("/tmaster")

    def test_ephemeral_delete_fires_watch(self, statemgr):
        """The TM-death notification mechanism of Section IV-C."""
        session = statemgr.session()
        session.create_ephemeral("/tmaster", b"host:port")
        events = []
        statemgr.watch("/tmaster", events.append)
        session.expire()
        assert [e.type for e in events] == [WatchEventType.DELETED]

    def test_closed_session_cannot_create(self, statemgr):
        session = statemgr.session()
        session.close()
        with pytest.raises(StateError):
            session.create_ephemeral("/x", b"")

    def test_expire_is_idempotent(self, statemgr):
        session = statemgr.session()
        session.create_ephemeral("/x", b"")
        session.expire()
        session.expire()

    def test_independent_sessions(self, statemgr):
        first, second = statemgr.session(), statemgr.session()
        first.create_ephemeral("/a", b"")
        second.create_ephemeral("/b", b"")
        first.close()
        assert not statemgr.exists("/a")
        assert statemgr.exists("/b")

    def test_manager_close_expires_sessions(self, statemgr):
        session = statemgr.session()
        session.create_ephemeral("/x", b"")
        statemgr.close()
        assert not statemgr.exists("/x")


class TestFencingPrimitives:
    """The three State Manager behaviours TM failover fencing rests on
    (see DESIGN.md §14): one-shot expiry notification, optimistic-version
    writes, and ephemeral-node mutual exclusion."""

    def test_session_expiry_fires_watch_exactly_once(self, statemgr):
        session = statemgr.session()
        session.create_ephemeral("/tmasterlocation", b"tm-1")
        events = []
        statemgr.watch("/tmasterlocation", events.append)
        session.expire()
        session.expire()  # idempotent: no second notification
        # Re-creating the node must not re-fire the consumed watch —
        # the failover path re-arms explicitly inside its callback.
        statemgr.session().create_ephemeral("/tmasterlocation", b"tm-2")
        assert [e.type for e in events] == [WatchEventType.DELETED]

    def test_versioned_set_rejects_stale_writer(self, statemgr):
        """Two masters race a read-modify-write of the epoch node: the
        slower one holds a stale version and MUST lose."""
        statemgr.create("/masterepoch", b"0")
        _, version = statemgr.get("/masterepoch")
        statemgr.set("/masterepoch", b"1", expected_version=version)
        with pytest.raises(StateError):
            statemgr.set("/masterepoch", b"1", expected_version=version)
        assert statemgr.get_data("/masterepoch") == b"1"

    def test_second_ephemeral_claim_fails_until_expiry(self, statemgr):
        """Only one live master can hold tmasterlocation; a successor
        waits out the incumbent's session instead of force-deleting."""
        incumbent = statemgr.session()
        incumbent.create_ephemeral("/tmasterlocation", b"tm-1")
        challenger = statemgr.session()
        with pytest.raises(StateError):
            challenger.create_ephemeral("/tmasterlocation", b"tm-2")
        incumbent.expire()
        challenger.create_ephemeral("/tmasterlocation", b"tm-2")
        assert statemgr.get_data("/tmasterlocation") == b"tm-2"


class TestLocalFsPersistence:
    def test_survives_restart(self, tmp_path):
        root = tmp_path / "state"
        first = LocalFileSystemStateManager(root)
        first.create("/topologies/wc/packingplan", b"plan-v1")
        first.set("/topologies/wc/packingplan", b"plan-v2")

        second = LocalFileSystemStateManager(root)
        data, version = second.get("/topologies/wc/packingplan")
        assert data == b"plan-v2"
        assert version == 1
        assert second.children("/topologies") == ["wc"]

    def test_ephemerals_do_not_survive_restart(self, tmp_path):
        root = tmp_path / "state"
        first = LocalFileSystemStateManager(root)
        session = first.session()
        session.create_ephemeral("/tmaster", b"loc")

        second = LocalFileSystemStateManager(root)
        assert not second.exists("/tmaster")

    def test_delete_persists(self, tmp_path):
        root = tmp_path / "state"
        first = LocalFileSystemStateManager(root)
        first.create("/a/b", b"x")
        first.delete("/a/b")
        second = LocalFileSystemStateManager(root)
        assert not second.exists("/a/b")


class TestTopologyPaths:
    def test_layout(self):
        paths = TopologyPaths("wc")
        assert paths.topology == "/topologies/wc/topology"
        assert paths.packing_plan == "/topologies/wc/packingplan"
        assert paths.tmaster_location == "/topologies/wc/tmasterlocation"
        assert paths.scheduler_location == "/topologies/wc/schedulerlocation"
        assert paths.execution_state == "/topologies/wc/executionstate"
        assert paths.container(3) == "/topologies/wc/containers/3"

    def test_list_topologies(self, statemgr):
        assert TopologyPaths.list_topologies(statemgr) == []
        statemgr.create(TopologyPaths("wc").topology, b"")
        statemgr.create(TopologyPaths("spam").topology, b"")
        assert TopologyPaths.list_topologies(statemgr) == ["spam", "wc"]

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            TopologyPaths("bad name")
