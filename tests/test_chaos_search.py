"""Tests for the chaos-schedule search (repro.chaos.search)."""

from __future__ import annotations

import pytest

from repro.chaos.search import (FAULT_MODES, GRID, ChaosSearchResult,
                                ChaosTrial, measure_partition_at,
                                measure_tmaster_kill_at, search,
                                trace_hot_times)


def test_partition_trial_recovers_deterministically():
    first = measure_partition_at(0.3, fast=True)
    # Checkpointing is on: the rollback must land and recovery is the
    # restore lag, strictly positive.
    assert first.recovery_secs > 0
    assert first.relaunches >= 1
    # Same timing, fresh cluster: chaos runs replay exactly per seed.
    second = measure_partition_at(0.3, fast=True)
    assert second == first


def test_fault_vocabulary_covers_tm_kills():
    assert FAULT_MODES == {"partition": measure_partition_at,
                           "tm-kill": measure_tmaster_kill_at}


def test_tmaster_kill_trial_measures_control_plane_outage():
    trial = measure_tmaster_kill_at(0.3, fast=True)
    # The engine relaunched the master; recovery is the control-plane
    # outage (kill -> successor's first plan broadcast), bounded by
    # failover delay + startup, and replays exactly per seed.
    assert trial.recovery_secs > 0
    second = measure_tmaster_kill_at(0.3, fast=True)
    assert second == trial


def test_trace_hot_times_are_positive_offsets():
    offsets = trace_hot_times(fast=True)
    assert offsets == sorted(offsets)
    assert all(offset > 0 for offset in offsets)
    assert len(offsets) <= 4


def test_result_ranks_by_recovery():
    result = ChaosSearchResult(trials=[
        ChaosTrial(0.2, 1.0, 1, 1), ChaosTrial(0.4, 2.5, 1, 1),
        ChaosTrial(0.6, -1.0, 0, 0)])
    assert result.best.start == 0.4
    assert "worst-case timing: +0.4s" in result.format()


@pytest.mark.slow
def test_greedy_search_explores_seeds_and_grid():
    result = search(rounds=1, fast=True)
    starts = {trial.start for trial in result.trials}
    assert set(GRID) <= starts
    assert starts >= set(result.seeds) - {0.0}
    # Refinement adds at least one bracket around the incumbent.
    assert len(result.trials) > len(GRID) + len(result.seeds) - 1
    assert result.best.recovery_secs > 0
