"""Tests for weighted streaming statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.stats import WeightedReservoir, WeightedStats

values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
weights = st.floats(min_value=0.1, max_value=1e4, allow_nan=False)


class TestWeightedStats:
    def test_empty(self):
        stats = WeightedStats()
        assert stats.mean == 0.0
        assert stats.count == 0.0
        assert stats.min is None and stats.max is None

    def test_single_value(self):
        stats = WeightedStats()
        stats.add(5.0, weight=3.0)
        assert stats.mean == 5.0
        assert stats.count == 3.0
        assert stats.min == stats.max == 5.0

    def test_weighted_mean(self):
        stats = WeightedStats()
        stats.add(10.0, weight=1.0)
        stats.add(20.0, weight=3.0)
        assert stats.mean == pytest.approx(17.5)

    def test_min_max(self):
        stats = WeightedStats()
        for value in (3.0, -1.0, 7.0):
            stats.add(value)
        assert stats.min == -1.0
        assert stats.max == 7.0

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedStats().add(1.0, weight=0.0)

    def test_merge(self):
        left, right = WeightedStats(), WeightedStats()
        left.add(10.0, weight=2.0)
        right.add(30.0, weight=2.0)
        left.merge(right)
        assert left.mean == pytest.approx(20.0)
        assert left.count == 4.0
        assert left.min == 10.0 and left.max == 30.0

    def test_merge_empty(self):
        stats = WeightedStats()
        stats.add(5.0)
        stats.merge(WeightedStats())
        assert stats.mean == 5.0

    def test_snapshot_keys(self):
        stats = WeightedStats()
        stats.add(1.0)
        snap = stats.snapshot()
        assert set(snap) == {"count", "mean", "min", "max", "p50", "p99"}

    def test_bad_reservoir_size_rejected(self):
        with pytest.raises(ValueError):
            WeightedStats(reservoir_size=0)

    @given(st.lists(st.tuples(values, weights), min_size=1, max_size=200))
    def test_mean_matches_direct_computation(self, pairs):
        stats = WeightedStats()
        for value, weight in pairs:
            stats.add(value, weight)
        expected = sum(v * w for v, w in pairs) / sum(w for _v, w in pairs)
        assert stats.mean == pytest.approx(expected, rel=1e-9, abs=1e-9)


class TestWeightedReservoir:
    def test_percentile_exact_small(self):
        res = WeightedReservoir(size=100)
        for value in range(1, 11):
            res.add(float(value))
        assert res.percentile(0.5) == pytest.approx(5.0, abs=1.0)
        assert res.percentile(1.0) == 10.0
        assert res.percentile(0.0) == 1.0

    def test_percentile_empty(self):
        assert WeightedReservoir().percentile(0.5) == 0.0

    def test_percentile_bad_q_rejected(self):
        with pytest.raises(ValueError):
            WeightedReservoir().percentile(1.5)

    def test_compaction_preserves_total_weight(self):
        res = WeightedReservoir(size=16)
        for value in range(100):
            res.add(float(value), weight=2.0)
        assert res.total_weight == pytest.approx(200.0)
        assert len(res.samples) < 100

    def test_compaction_keeps_percentiles_reasonable(self):
        res = WeightedReservoir(size=64)
        for value in range(1000):
            res.add(float(value))
        assert res.percentile(0.5) == pytest.approx(500, rel=0.15)
        assert res.percentile(0.99) == pytest.approx(990, rel=0.15)

    def test_weighted_percentile(self):
        res = WeightedReservoir(size=100)
        res.add(1.0, weight=99.0)
        res.add(100.0, weight=1.0)
        assert res.percentile(0.5) == 1.0
        assert res.percentile(0.999) == 100.0

    def test_merge(self):
        left, right = WeightedReservoir(), WeightedReservoir()
        left.add(1.0)
        right.add(2.0)
        left.merge(right)
        assert left.total_weight == 2.0

    @given(st.lists(st.tuples(values, weights), min_size=1, max_size=500))
    def test_total_weight_conserved(self, pairs):
        res = WeightedReservoir(size=32)
        for value, weight in pairs:
            res.add(value, weight)
        expected = sum(w for _v, w in pairs)
        assert res.total_weight == pytest.approx(expected, rel=1e-9)

    @given(st.lists(values, min_size=5, max_size=300))
    def test_percentiles_within_range(self, data):
        res = WeightedReservoir(size=32)
        for value in data:
            res.add(value)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert min(data) <= res.percentile(q) <= max(data)
