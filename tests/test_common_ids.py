"""Tests for identifier helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ids


class TestCheckName:
    def test_accepts_simple_names(self):
        assert ids.check_name("word-count_1.v2") == "word-count_1.v2"

    @pytest.mark.parametrize("bad", ["", "-leading", "_x", "has space",
                                     "slash/name", None, 42])
    def test_rejects_bad_names(self, bad):
        with pytest.raises(ValueError):
            ids.check_name(bad)  # type: ignore[arg-type]


class TestInstanceId:
    def test_format(self):
        assert ids.instance_id("count", 3, 2) == "container_2_count_3"

    def test_parse_roundtrip(self):
        iid = ids.instance_id("my-bolt", 17, 4)
        assert ids.parse_instance_id(iid) == (4, "my-bolt", 17)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            ids.parse_instance_id("not-an-id")

    @given(component=st.from_regex(r"[a-z][a-z0-9_-]{0,15}", fullmatch=True),
           task=st.integers(min_value=0, max_value=10_000),
           container=st.integers(min_value=0, max_value=10_000))
    def test_roundtrip_property(self, component, task, container):
        iid = ids.instance_id(component, task, container)
        assert ids.parse_instance_id(iid) == (container, component, task)


class TestIdGenerator:
    def test_sequence(self):
        gen = ids.IdGenerator("x")
        assert [gen.next() for _ in range(3)] == ["x-0", "x-1", "x-2"]

    def test_next_int(self):
        gen = ids.IdGenerator("x")
        assert gen.next_int() == 0
        assert gen.next_int() == 1

    def test_independent_generators(self):
        first, second = ids.IdGenerator("a"), ids.IdGenerator("b")
        first.next()
        assert second.next() == "b-0"
