"""Parallel sweep runner: pooled results must be identical to serial.

Each sweep point builds its own freshly seeded simulator, so results
cannot depend on execution order; these tests pin that promise all the
way up to a full figure module (byte-identical CSV output), plus the
basic ``run_sweep`` contract (ordering, env control, serial fallbacks).
"""

import os

import pytest

from repro.experiments import fig02_04_heron_vs_storm as fig02
from repro.experiments import parallel
from repro.experiments.parallel import (default_processes, parallel_enabled,
                                        run_sweep)


def _square(x: int) -> int:
    return x * x  # module-level: picklable for pool workers


class TestRunSweep:
    def test_results_in_spec_order(self):
        assert run_sweep(_square, [3, 1, 2], parallel=False) == [9, 1, 4]

    def test_pool_matches_serial(self):
        serial = run_sweep(_square, range(8), parallel=False)
        pooled = run_sweep(_square, range(8), parallel=True, processes=2)
        assert pooled == serial

    def test_single_spec_runs_serial(self):
        assert run_sweep(_square, [5], parallel=True, processes=4) == [25]

    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv(parallel.ENV_FLAG, raising=False)
        assert not parallel_enabled()
        monkeypatch.setenv(parallel.ENV_FLAG, "0")
        assert not parallel_enabled()
        monkeypatch.setenv(parallel.ENV_FLAG, "1")
        assert parallel_enabled()

    def test_default_processes_capped_by_cores(self):
        cores = os.cpu_count() or 1
        assert default_processes(1_000) == cores
        assert default_processes(1) == 1


class TestFigureDeterminism:
    @pytest.mark.slow
    def test_fig02_04_pooled_output_byte_identical(self, monkeypatch):
        """One full figure module: pooled CSV == serial CSV, byte for byte.

        Parallelisms are shrunk so the test stays affordable; the code
        path (measure_point via measure_sweep/run_sweep) is exactly the
        one full runs take. ``default_processes`` is forced to 2 so a
        real pool runs even on single-core CI hosts.
        """
        monkeypatch.setattr(fig02, "FAST_PARALLELISMS", [2, 3])
        monkeypatch.setattr(parallel, "default_processes", lambda n: 2)
        serial = fig02.run(fast=True, parallel=False)
        pooled = fig02.run(fast=True, parallel=True)
        assert set(serial) == set(pooled) == {"fig2", "fig3", "fig4"}
        for key in serial:
            assert pooled[key].to_csv() == serial[key].to_csv()

    def test_measure_point_is_picklable(self):
        import pickle

        pickle.dumps(fig02.measure_point)
