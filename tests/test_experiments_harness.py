"""Tests for the experiment harness plumbing and small measured runs."""

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.experiments.harness import (ExperimentPoint, HDINSIGHT_MACHINE,
                                       heron_perf_config, machines_for,
                                       run_heron_wordcount,
                                       run_storm_wordcount, windows_for)


class TestExperimentPoint:
    def test_unit_conversions(self):
        point = ExperimentPoint(engine="heron", parallelism=4,
                                throughput_tps=1_000_000.0,
                                latency_s=0.025, cores=30.0)
        assert point.throughput_mtpm == pytest.approx(60.0)
        assert point.latency_ms == pytest.approx(25.0)
        assert point.throughput_mtpm_per_core == pytest.approx(2.0)

    def test_zero_cores(self):
        point = ExperimentPoint("heron", 1, 1.0, 0.0, 0.0)
        assert point.throughput_mtpm_per_core == 0.0


class TestSizing:
    def test_machines_for_hdinsight(self):
        # 2*25 = 50 instances, 4 per container -> 13 containers, 5 cpu
        # each, one per 8-core machine, +TM headroom.
        assert machines_for(25, 4, HDINSIGHT_MACHINE) == 15

    def test_windows_shrink_with_scale(self):
        small = windows_for(25, fast=False)
        large = windows_for(200, fast=False)
        assert sum(large) < sum(small)

    def test_fast_windows(self):
        assert windows_for(25, fast=True) == (0.3, 0.5)


class TestPerfConfig:
    def test_defaults(self):
        cfg = heron_perf_config(acks=True)
        assert cfg.get(Keys.ACKING_ENABLED) is True
        assert cfg.get(Keys.ACK_TRACKING) == "counted"
        assert cfg.get(Keys.MEMPOOL_ENABLED) is True
        assert cfg.get(Keys.LAZY_DESERIALIZATION) is True

    def test_optimized_toggle(self):
        cfg = heron_perf_config(acks=False, optimized=False)
        assert cfg.get(Keys.MEMPOOL_ENABLED) is False
        assert cfg.get(Keys.LAZY_DESERIALIZATION) is False

    def test_independent_toggles(self):
        cfg = heron_perf_config(acks=False, mempool=False, lazy=True)
        assert cfg.get(Keys.MEMPOOL_ENABLED) is False
        assert cfg.get(Keys.LAZY_DESERIALIZATION) is True


class TestMeasuredRuns:
    """Small end-to-end measurements through the harness itself."""

    def test_heron_point_sane(self):
        point = run_heron_wordcount(
            2, acks=True, config=heron_perf_config(acks=True),
            warmup=0.2, measure=0.4)
        assert point.engine == "heron"
        assert point.throughput_tps > 0
        assert 0 < point.latency_s < 1.0
        assert point.cores > 0
        assert point.extra["failed"] == 0

    def test_storm_point_sane(self):
        point = run_storm_wordcount(
            2, acks=False, config=heron_perf_config(acks=False),
            warmup=0.2, measure=0.4)
        assert point.engine == "storm"
        assert point.throughput_tps > 0
        assert point.latency_s == 0.0  # no acks, no latency measured

    def test_measurement_is_deterministic(self):
        def measure():
            return run_heron_wordcount(
                2, acks=False, config=heron_perf_config(acks=False),
                warmup=0.2, measure=0.3).throughput_tps

        assert measure() == measure()

    def test_optimizations_off_is_slower(self):
        fast_point = run_heron_wordcount(
            2, acks=False, config=heron_perf_config(acks=False),
            warmup=0.2, measure=0.4)
        slow_point = run_heron_wordcount(
            2, acks=False, config=heron_perf_config(acks=False,
                                                    optimized=False),
            warmup=0.2, measure=0.4)
        assert fast_point.throughput_tps > 2 * slow_point.throughput_tps
