"""Tests for Tuple/Batch value types and component base classes."""

import pytest

from repro.api.component import Bolt, Spout
from repro.api.tuples import Batch, Tuple, fields_index


class TestTuple:
    def test_indexing(self):
        tup = Tuple(values=["heron", 3])
        assert tup[0] == "heron"
        assert tup[1] == 3
        assert len(tup) == 2

    def test_defaults(self):
        tup = Tuple(values=[1])
        assert tup.stream == "default"
        assert tup.tuple_id == 0


class TestBatch:
    def test_full_fidelity_weight_is_one(self):
        batch = Batch(values=[["a"], ["b"]], count=2)
        assert batch.weight == 1.0

    def test_sampled_weight(self):
        batch = Batch(values=[["a"], ["b"]], count=10)
        assert batch.weight == 5.0

    def test_empty_weight(self):
        assert Batch(values=[], count=0).weight == 0.0

    def test_count_less_than_values_rejected(self):
        with pytest.raises(ValueError):
            Batch(values=[["a"], ["b"]], count=1)

    def test_tuples_materialization(self):
        batch = Batch(values=[["a"], ["b"]], count=2, stream="s",
                      source_component="spout", tuple_ids=[5, 6])
        tuples = batch.tuples()
        assert [t.values for t in tuples] == [["a"], ["b"]]
        assert [t.tuple_id for t in tuples] == [5, 6]
        assert all(t.stream == "s" for t in tuples)

    def test_tuples_without_ids(self):
        batch = Batch(values=[["a"]], count=1)
        assert batch.tuples()[0].tuple_id == 0


class TestFieldsIndex:
    def test_positions(self):
        assert fields_index(["word", "count"], ["count"]) == [1]
        assert fields_index(["a", "b", "c"], ["c", "a"]) == [2, 0]

    def test_unknown_field(self):
        with pytest.raises(ValueError):
            fields_index(["word"], ["nope"])


class RecordingCollector:
    def __init__(self):
        self.emitted = []

    def emit(self, values, stream="default", anchors=None):
        self.emitted.append(values)

    def emit_batch(self, values, count=None, stream="default"):
        self.emitted.extend(values)

    def ack(self, tup):
        pass

    def fail(self, tup):
        pass


class TestComponentDefaults:
    def test_spout_next_batch_loops_next_tuple(self):
        class OneSpout(Spout):
            def next_tuple(self, collector):
                collector.emit(["x"])

        collector = RecordingCollector()
        emitted = OneSpout().next_batch(collector, 5)
        assert emitted == 5
        assert len(collector.emitted) == 5

    def test_spout_without_next_tuple_raises(self):
        with pytest.raises(NotImplementedError):
            Spout().next_tuple(RecordingCollector())

    def test_bolt_execute_batch_loops_execute(self):
        seen = []

        class Echo(Bolt):
            def execute(self, tup, collector):
                seen.append(tup.values)

        batch = Batch(values=[["a"], ["b"]], count=2)
        Echo().execute_batch(batch, RecordingCollector())
        assert seen == [["a"], ["b"]]

    def test_bolt_without_execute_raises(self):
        with pytest.raises(NotImplementedError):
            Bolt().execute(Tuple(values=[]), RecordingCollector())

    def test_declare_output_does_not_mutate_class(self):
        class MySpout(Spout):
            outputs = {"default": ["x"]}

        first, second = MySpout(), MySpout()
        first.declare_output(["y"], stream="side")
        assert "side" not in second.outputs
        assert first.output_fields("side") == ["y"]

    def test_default_outputs_initialized(self):
        class Bare(Bolt):
            def execute(self, tup, collector):
                pass

        assert Bare().output_fields() == []
        assert "default" in Bare().outputs

    def test_user_cost_default_zero(self):
        assert Spout().user_cost_per_tuple == 0.0
