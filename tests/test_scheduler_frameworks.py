"""Tests for the simulated scheduling frameworks."""

import pytest

from repro.common.errors import SchedulerError
from repro.common.resources import Resource
from repro.common.units import GB
from repro.scheduler.frameworks import (AuroraFramework, LocalFramework,
                                        YarnFramework)
from repro.simulation.cluster import Cluster
from repro.simulation.events import Simulator

CAP = Resource(cpu=32, ram=64 * GB, disk=500 * GB)
SPEC = Resource(cpu=4, ram=8 * GB)
OTHER_SPEC = Resource(cpu=2, ram=4 * GB)


class RecordingClient:
    def __init__(self):
        self.relaunched = []
        self.lost = []

    def relaunch_container(self, role, container):
        self.relaunched.append((role, container))

    def container_lost(self, role, spec):
        self.lost.append((role, spec))


def make(framework_cls, machines=2):
    sim = Simulator()
    cluster = Cluster.homogeneous(machines, CAP)
    framework = framework_cls(sim, cluster)
    return sim, cluster, framework


class TestAllocation:
    def test_allocate_and_release(self):
        _sim, cluster, fw = make(YarnFramework)
        fw.register_job("job")
        container = fw.allocate("job", "container-1", SPEC)
        assert container.running
        assert cluster.provisioned_cores("job") == 4
        fw.release("job", "container-1")
        assert cluster.provisioned_cores("job") == 0

    def test_unknown_job_rejected(self):
        _sim, _cluster, fw = make(YarnFramework)
        with pytest.raises(SchedulerError):
            fw.allocate("ghost", "r", SPEC)

    def test_duplicate_role_rejected(self):
        _sim, _cluster, fw = make(YarnFramework)
        fw.register_job("job")
        fw.allocate("job", "r", SPEC)
        with pytest.raises(SchedulerError):
            fw.allocate("job", "r", SPEC)

    def test_duplicate_job_rejected(self):
        _sim, _cluster, fw = make(YarnFramework)
        fw.register_job("job")
        with pytest.raises(SchedulerError):
            fw.register_job("job")

    def test_release_unknown_role_rejected(self):
        _sim, _cluster, fw = make(YarnFramework)
        fw.register_job("job")
        with pytest.raises(SchedulerError):
            fw.release("job", "nope")

    def test_kill_job_releases_everything(self):
        _sim, cluster, fw = make(YarnFramework)
        fw.register_job("job")
        fw.allocate("job", "a", SPEC)
        fw.allocate("job", "b", SPEC)
        fw.kill_job("job")
        assert cluster.provisioned_cores() == 0
        with pytest.raises(SchedulerError):
            fw.job_containers("job")


class TestContainerShapes:
    def test_yarn_allows_heterogeneous(self):
        _sim, _cluster, fw = make(YarnFramework)
        fw.register_job("job")
        fw.allocate("job", "a", SPEC)
        fw.allocate("job", "b", OTHER_SPEC)  # fine

    def test_aurora_rejects_heterogeneous(self):
        _sim, _cluster, fw = make(AuroraFramework)
        fw.register_job("job")
        fw.allocate("job", "a", SPEC)
        with pytest.raises(SchedulerError, match="homogeneous"):
            fw.allocate("job", "b", OTHER_SPEC)

    def test_aurora_allows_homogeneous(self):
        _sim, _cluster, fw = make(AuroraFramework)
        fw.register_job("job")
        fw.allocate("job", "a", SPEC)
        fw.allocate("job", "b", SPEC)


class TestFailureBehaviour:
    def test_aurora_restarts_failed_container(self):
        sim, cluster, fw = make(AuroraFramework)
        client = RecordingClient()
        fw.register_job("job", client)
        container = fw.allocate("job", "container-1", SPEC)
        cluster.fail_container(container)
        sim.run_for(5.0)
        assert len(client.relaunched) == 1
        role, fresh = client.relaunched[0]
        assert role == "container-1"
        assert fresh.running and fresh is not container
        assert not client.lost

    def test_aurora_restart_waits_recovery_delay(self):
        sim, cluster, fw = make(AuroraFramework)
        client = RecordingClient()
        fw.register_job("job", client)
        container = fw.allocate("job", "c", SPEC)
        cluster.fail_container(container)
        sim.run_for(0.5)  # less than the 1s default recovery delay
        assert client.relaunched == []
        sim.run_for(1.0)
        assert len(client.relaunched) == 1

    def test_yarn_notifies_but_does_not_restart(self):
        sim, cluster, fw = make(YarnFramework)
        client = RecordingClient()
        fw.register_job("job", client)
        container = fw.allocate("job", "container-1", SPEC)
        cluster.fail_container(container)
        sim.run_for(5.0)
        assert client.lost == [("container-1", SPEC)]
        assert client.relaunched == []
        assert fw.job_containers("job") == []

    def test_local_does_nothing_on_failure(self):
        sim, cluster, fw = make(LocalFramework, machines=1)
        client = RecordingClient()
        fw.register_job("job", client)
        container = fw.allocate("job", "c", SPEC)
        cluster.fail_container(container)
        sim.run_for(5.0)
        assert client.lost == [] and client.relaunched == []

    def test_failure_of_foreign_container_ignored(self):
        sim, cluster, fw = make(YarnFramework)
        client = RecordingClient()
        fw.register_job("job", client)
        foreign = cluster.allocate_container(SPEC, tag="other")
        cluster.fail_container(foreign)
        sim.run_for(5.0)
        assert client.lost == []

    def test_aurora_restart_after_job_kill_is_noop(self):
        sim, cluster, fw = make(AuroraFramework)
        client = RecordingClient()
        fw.register_job("job", client)
        container = fw.allocate("job", "c", SPEC)
        cluster.fail_container(container)
        fw.kill_job("job")
        sim.run_for(5.0)
        assert client.relaunched == []


class TestLocalFramework:
    def test_default_single_machine(self):
        sim = Simulator()
        fw = LocalFramework(sim)
        fw.register_job("job")
        fw.allocate("job", "c", Resource(cpu=100))

    def test_multi_machine_rejected(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(2, CAP)
        with pytest.raises(SchedulerError):
            LocalFramework(sim, cluster)
