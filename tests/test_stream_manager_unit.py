"""Focused Stream Manager behaviour tests (via small live topologies)."""

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.workloads.wordcount import wordcount_topology


def submit(cluster, parallelism=2, **overrides):
    cfg = Config()
    cfg.set(Keys.BATCH_SIZE, 50)
    for key, value in overrides.items():
        cfg.set(getattr(Keys, key.upper()), value)
    topology = wordcount_topology(parallelism, corpus_size=500, config=cfg)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    return handle


class TestMemoryPool:
    def test_pool_reuses_cache_entries(self):
        cluster = HeronCluster.local()
        handle = submit(cluster, mempool_enabled=True)
        cluster.run_for(1.0)
        stats = handle.pool_stats()
        assert stats["acquires"] > 100
        assert stats["hits"] / stats["acquires"] > 0.9

    def test_pool_disabled_never_hits(self):
        cluster = HeronCluster.local()
        handle = submit(cluster, mempool_enabled=False)
        cluster.run_for(0.5)
        assert handle.pool_stats()["acquires"] == 0

    def test_disabling_optimizations_reduces_throughput(self):
        def throughput(**overrides):
            cluster = HeronCluster.local()
            handle = submit(cluster, **overrides)
            cluster.run_for(1.0)
            return handle.totals()["executed"]

        optimized = throughput(mempool_enabled=True,
                               lazy_deserialization=True)
        unoptimized = throughput(mempool_enabled=False,
                                 lazy_deserialization=False)
        assert optimized > unoptimized * 2


class TestDrainFrequency:
    def test_drain_counts_scale_with_frequency(self):
        def drains(drain_ms):
            cluster = HeronCluster.local()
            handle = submit(cluster, cache_drain_frequency_ms=drain_ms)
            cluster.run_for(1.0)
            return handle.sm_totals()["drains"]

        fast_drains = drains(2.0)
        slow_drains = drains(20.0)
        assert fast_drains > 4 * slow_drains

    def test_sm_counters_populated(self):
        cluster = HeronCluster.local()
        handle = submit(cluster)
        cluster.run_for(0.5)
        totals = handle.sm_totals()
        assert totals["tuples_routed"] > 0
        assert totals["batches_in"] > 0
        assert totals["batches_out"] > 0
        assert totals["dropped_batches"] == 0


class TestCacheDisabled:
    def test_traffic_flows_without_cache(self):
        cluster = HeronCluster.local()
        handle = submit(cluster, cache_enabled=False)
        cluster.run_for(0.5)
        assert handle.totals()["executed"] > 0

    def test_words_still_counted_correctly(self):
        cluster = HeronCluster.local()
        handle = submit(cluster, cache_enabled=False, parallelism=3)
        cluster.run_for(0.5)
        seen = {}
        for key, inst in handle._runtime.instances.items():
            if key[0] != "count":
                continue
            for word in inst.user.counts:
                assert word not in seen
                seen[word] = key[1]
        assert seen

    def test_acks_flow_without_cache(self):
        cluster = HeronCluster.local()
        handle = submit(cluster, cache_enabled=False, acking_enabled=True,
                        ack_tracking="counted", max_spout_pending=500)
        cluster.run_for(0.5)
        assert handle.totals()["acked"] > 0


class TestAckUnoptimizedPenalty:
    def test_unoptimized_acks_cost_more(self):
        def acked(**overrides):
            cluster = HeronCluster.local()
            handle = submit(cluster, acking_enabled=True,
                            ack_tracking="counted",
                            max_spout_pending=100_000, **overrides)
            cluster.run_for(1.0)
            return handle.totals()["acked"]

        optimized = acked()
        unoptimized = acked(mempool_enabled=False,
                            lazy_deserialization=False)
        assert optimized > unoptimized * 2


class TestBackpressureNoAck:
    def test_backpressure_triggers_under_slow_bolt(self):
        """A single bolt fed by many spouts must trigger backpressure."""
        from repro.api.topology import TopologyBuilder
        from repro.workloads.wordcount import CountBolt, WordSpout

        builder = TopologyBuilder("skewed")
        builder.set_spout("word", WordSpout(500), parallelism=6)
        builder.set_bolt("count", CountBolt(), parallelism=1) \
            .fields_grouping("word", fields=["word"])
        builder.set_config(Keys.BATCH_SIZE, 50)
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(builder.build())
        handle.wait_until_running()
        cluster.run_for(2.0)
        assert handle.sm_totals()["backpressure_starts"] > 0
        # Queues stay bounded thanks to the pauses.
        bolt = handle._runtime.instances[("count", 0)]
        assert bolt.inbox_len < 2000

    def test_spouts_resume_after_backpressure(self):
        cluster = HeronCluster.local()
        handle = submit(cluster)
        cluster.run_for(1.0)
        before = handle.totals()["emitted"]
        cluster.run_for(1.0)
        assert handle.totals()["emitted"] > before
