"""Tests for the simulated cluster substrate."""

import pytest

from repro.common.errors import SchedulerError, SimulationError
from repro.common.resources import Resource
from repro.common.units import GB
from repro.simulation.actors import FunctionActor
from repro.simulation.cluster import Cluster, ContainerState
from repro.simulation.events import Simulator
from repro.simulation.network import UniformNetwork

CAP = Resource(cpu=8, ram=28 * GB, disk=100 * GB)
SMALL = Resource(cpu=2, ram=4 * GB, disk=10 * GB)


def make_cluster(machines=2):
    return Cluster.homogeneous(machines, CAP)


class TestAllocation:
    def test_allocate_first_fit(self):
        cluster = make_cluster()
        c1 = cluster.allocate_container(SMALL)
        c2 = cluster.allocate_container(SMALL)
        assert c1.machine.id == 0 and c2.machine.id == 0
        assert c1.id != c2.id

    def test_spills_to_next_machine(self):
        cluster = make_cluster(machines=2)
        for _ in range(4):  # fills machine 0 (8 cpu / 2 cpu each)
            cluster.allocate_container(SMALL)
        c5 = cluster.allocate_container(SMALL)
        assert c5.machine.id == 1

    def test_allocation_failure(self):
        cluster = make_cluster(machines=1)
        with pytest.raises(SchedulerError):
            cluster.allocate_container(Resource(cpu=100))

    def test_capacity_accounting(self):
        cluster = make_cluster(machines=1)
        cluster.allocate_container(SMALL)
        assert cluster.total_allocated == SMALL
        assert cluster.machines[0].free.cpu == CAP.cpu - SMALL.cpu

    def test_provisioned_cores_by_tag(self):
        cluster = make_cluster()
        cluster.allocate_container(SMALL, tag="topoA")
        cluster.allocate_container(SMALL, tag="topoA")
        cluster.allocate_container(SMALL, tag="topoB")
        assert cluster.provisioned_cores("topoA") == 4
        assert cluster.provisioned_cores() == 6

    def test_empty_cluster_rejected(self):
        with pytest.raises(SchedulerError):
            Cluster([])

    def test_bad_machine_count_rejected(self):
        with pytest.raises(SchedulerError):
            Cluster.homogeneous(0, CAP)


class TestRelease:
    def test_release_returns_resources(self):
        cluster = make_cluster(machines=1)
        container = cluster.allocate_container(SMALL)
        cluster.release_container(container)
        assert cluster.total_allocated.is_zero
        assert container.state == ContainerState.KILLED

    def test_release_kills_processes(self):
        sim = Simulator()
        cluster = make_cluster()
        container = cluster.allocate_container(SMALL)
        actor = FunctionActor(sim, "p", container.location(),
                              network=UniformNetwork(),
                              handler=lambda a, m: None)
        container.attach(actor)
        cluster.release_container(container)
        assert not actor.alive

    def test_double_release_rejected(self):
        cluster = make_cluster()
        container = cluster.allocate_container(SMALL)
        cluster.release_container(container)
        with pytest.raises(SchedulerError):
            cluster.release_container(container)


class TestFailure:
    def test_fail_notifies_observers(self):
        cluster = make_cluster()
        failed = []
        cluster.on_container_failed(failed.append)
        container = cluster.allocate_container(SMALL)
        cluster.fail_container(container)
        assert failed == [container]
        assert container.state == ContainerState.FAILED

    def test_fail_returns_resources(self):
        cluster = make_cluster(machines=1)
        container = cluster.allocate_container(SMALL)
        cluster.fail_container(container)
        assert cluster.total_allocated.is_zero
        # Space is reusable after a failure.
        cluster.allocate_container(CAP)

    def test_attach_to_dead_container_rejected(self):
        sim = Simulator()
        cluster = make_cluster()
        container = cluster.allocate_container(SMALL)
        cluster.release_container(container)
        actor = FunctionActor(sim, "p", None, network=UniformNetwork(),
                              handler=lambda a, m: None)
        with pytest.raises(SimulationError):
            container.attach(actor)


class TestLocations:
    def test_distinct_process_ids(self):
        cluster = make_cluster()
        container = cluster.allocate_container(SMALL)
        loc1 = container.location()
        loc2 = container.location()
        assert loc1.process_id != loc2.process_id
        assert loc1.container_id == loc2.container_id == container.id

    def test_shared_process_location(self):
        cluster = make_cluster()
        container = cluster.allocate_container(SMALL)
        pid = container.new_process_id()
        loc1 = container.location(shared_process=pid)
        loc2 = container.location(shared_process=pid)
        assert loc1.colocated_process(loc2)

    def test_live_containers_filter(self):
        cluster = make_cluster()
        kept = cluster.allocate_container(SMALL, tag="keep")
        dropped = cluster.allocate_container(SMALL, tag="drop")
        cluster.release_container(dropped)
        assert cluster.live_containers() == [kept]
        assert cluster.live_containers("drop") == []
