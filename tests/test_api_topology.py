"""Tests for the topology builder and validation."""

import pytest

from repro.api.component import Bolt, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.grouping import FieldsGrouping
from repro.api.topology import TopologyBuilder
from repro.common.config import Config
from repro.common.errors import TopologyError
from repro.common.resources import Resource


class WordSpout(Spout):
    outputs = {"default": ["word"]}

    def next_tuple(self, collector):
        collector.emit(["hello"])


class CountBolt(Bolt):
    outputs = {"default": ["word", "count"]}

    def execute(self, tup, collector):
        collector.emit([tup[0], 1])


class SinkBolt(Bolt):
    def execute(self, tup, collector):
        pass


def wordcount_builder():
    builder = TopologyBuilder("wordcount")
    builder.set_spout("word", WordSpout(), parallelism=2)
    builder.set_bolt("count", CountBolt(), parallelism=3) \
        .fields_grouping("word", fields=["word"])
    return builder


class TestBuilder:
    def test_build_succeeds(self):
        topology = wordcount_builder().build()
        assert topology.name == "wordcount"
        assert topology.parallelism_of("word") == 2
        assert topology.parallelism_of("count") == 3
        assert topology.total_instances == 5

    def test_components_order_spouts_first(self):
        topology = wordcount_builder().build()
        assert topology.components() == ["word", "count"]

    def test_is_spout(self):
        topology = wordcount_builder().build()
        assert topology.is_spout("word")
        assert not topology.is_spout("count")

    def test_duplicate_name_rejected(self):
        builder = wordcount_builder()
        with pytest.raises(TopologyError):
            builder.set_spout("word", WordSpout())

    def test_wrong_types_rejected(self):
        builder = TopologyBuilder("t")
        with pytest.raises(TopologyError):
            builder.set_spout("s", CountBolt())  # type: ignore[arg-type]
        with pytest.raises(TopologyError):
            builder.set_bolt("b", WordSpout())  # type: ignore[arg-type]

    def test_bad_topology_name_rejected(self):
        with pytest.raises(ValueError):
            TopologyBuilder("bad name!")

    def test_config_merging(self):
        builder = wordcount_builder()
        builder.set_config(Keys.ACKING_ENABLED, True)
        topology = builder.build(Config({"extra": 1}))
        assert topology.config.get(Keys.ACKING_ENABLED) is True
        assert topology.config.get("extra") == 1

    def test_resource_hints_carried(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", WordSpout(), resource=Resource(cpu=2))
        builder.set_bolt("b", SinkBolt(), resource=Resource(cpu=3)) \
            .shuffle_grouping("s")
        topology = builder.build()
        assert topology.spouts["s"].resource == Resource(cpu=2)
        assert topology.bolts["b"].resource == Resource(cpu=3)


class TestValidation:
    def test_no_spouts_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_bolt("b", SinkBolt(), parallelism=1)
        with pytest.raises(TopologyError):
            builder.build()

    def test_bolt_without_inputs_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", WordSpout())
        builder.set_bolt("orphan", SinkBolt())
        with pytest.raises(TopologyError, match="no inputs"):
            builder.build()

    def test_unknown_source_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", WordSpout())
        builder.set_bolt("b", SinkBolt()).shuffle_grouping("ghost")
        with pytest.raises(TopologyError, match="unknown component"):
            builder.build()

    def test_unknown_stream_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", WordSpout())
        builder.set_bolt("b", SinkBolt()).shuffle_grouping("s", stream="side")
        with pytest.raises(TopologyError, match="stream"):
            builder.build()

    def test_nonpositive_parallelism_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", WordSpout(), parallelism=0)
        with pytest.raises(TopologyError):
            builder.build()

    def test_cycle_rejected(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", WordSpout())
        builder.set_bolt("a", CountBolt()).shuffle_grouping("s") \
            .shuffle_grouping("b")
        builder.set_bolt("b", CountBolt()).shuffle_grouping("a")
        with pytest.raises(TopologyError, match="cycle"):
            builder.build()

    def test_diamond_is_fine(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", WordSpout())
        builder.set_bolt("left", CountBolt()).shuffle_grouping("s")
        builder.set_bolt("right", CountBolt()).shuffle_grouping("s")
        builder.set_bolt("join", SinkBolt()) \
            .shuffle_grouping("left").shuffle_grouping("right")
        builder.build()


class TestQueries:
    def test_downstream_edges(self):
        topology = wordcount_builder().build()
        edges = topology.downstream("word")
        assert len(edges) == 1
        name, grouping = edges[0]
        assert name == "count"
        assert isinstance(grouping, FieldsGrouping)

    def test_downstream_empty_for_sink(self):
        topology = wordcount_builder().build()
        assert topology.downstream("count") == []

    def test_output_fields(self):
        topology = wordcount_builder().build()
        assert topology.output_fields("word") == ["word"]
        assert topology.output_fields("count") == ["word", "count"]

    def test_unknown_component_rejected(self):
        topology = wordcount_builder().build()
        with pytest.raises(TopologyError):
            topology.parallelism_of("ghost")

    def test_describe_mentions_everything(self):
        text = wordcount_builder().build().describe()
        assert "wordcount" in text
        assert "word" in text and "count" in text
        assert "FieldsGrouping" in text


class TestScaling:
    def test_with_parallelism_changes(self):
        topology = wordcount_builder().build()
        scaled = topology.with_parallelism({"count": 6})
        assert scaled.parallelism_of("count") == 6
        assert scaled.parallelism_of("word") == 2
        # Original untouched.
        assert topology.parallelism_of("count") == 3

    def test_scaling_spouts(self):
        topology = wordcount_builder().build()
        scaled = topology.with_parallelism({"word": 5})
        assert scaled.parallelism_of("word") == 5

    def test_unknown_component_rejected(self):
        topology = wordcount_builder().build()
        with pytest.raises(TopologyError):
            topology.with_parallelism({"ghost": 2})

    def test_nonpositive_rejected(self):
        topology = wordcount_builder().build()
        with pytest.raises(TopologyError):
            topology.with_parallelism({"count": 0})
