"""Perf tooling smoke tests: the regression check must stay runnable.

``scripts/perf_report.py --smoke`` is the CI guard against kernel perf
regressions; these tests keep it invocable (and failing loudly when the
kernel is slower than the recorded baseline) and pin the property the
whole events/sec comparison rests on: the microbench event count is
deterministic, so ratios measure kernel time, not workload drift.
"""

import json
import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestBenchFile:
    def test_baseline_entry_is_first_and_complete(self):
        data = json.loads((ROOT / "BENCH_kernel.json").read_text())
        baseline = data["entries"][0]
        assert baseline["label"] == "seed"
        for key in ("kernel_events_per_sec", "kernel_events",
                    "kernel_cpu_s", "wordcount_p25_cpu_s"):
            assert key in baseline


class TestPerfReport:
    @pytest.mark.slow
    def test_smoke_invocation_passes(self):
        proc = subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "perf_report.py"),
             "--smoke"],
            cwd=ROOT, capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout


class TestMicrobenchDeterminism:
    @pytest.mark.slow
    def test_event_count_matches_recorded_baseline_scale(self):
        """Same op mix, shorter window: counts must be deterministic.

        Two independent runs of the microbench must process the exact
        same number of events; otherwise events/sec comparisons across
        revisions would conflate workload drift with kernel speed.
        """
        from repro.experiments.perf import kernel_microbench

        a = kernel_microbench(2.0)
        b = kernel_microbench(2.0)
        assert a["events"] == b["events"] > 0


class TestElasticReport:
    def test_elastic_flag_is_wired(self):
        proc = subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "perf_report.py"),
             "--help"],
            cwd=ROOT, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0
        assert "--elastic" in proc.stdout
        assert "BENCH_elastic" in proc.stdout

    @pytest.mark.slow
    def test_elastic_report_records_entry(self, tmp_path, monkeypatch):
        """The --elastic path: runs both modes, checks the elasticity
        bar, and records a BENCH_elastic.json entry."""
        sys.path.insert(0, str(ROOT / "scripts"))
        try:
            import perf_report
        finally:
            sys.path.pop(0)
        bench = tmp_path / "BENCH_elastic.json"
        monkeypatch.setattr(perf_report, "ELASTIC_BENCH_PATH", bench)
        assert perf_report.elastic_report(fast=True,
                                          update_label="test") == 0
        data = json.loads(bench.read_text())
        (entry,) = data["entries"]
        assert entry["label"] == "test"
        assert entry["runs"]["counts_identical"] is True
        assert entry["runs"]["auto"]["rescales_up"] >= 1
        assert entry["runs"]["auto"]["rescales_down"] >= 1
