"""The control-plane metrics path: instance → Metrics Manager → TM."""

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.workloads.wordcount import wordcount_topology


def launch(parallelism=2):
    cfg = Config().set(Keys.BATCH_SIZE, 50)
    cluster = HeronCluster.local()
    handle = cluster.submit_topology(
        wordcount_topology(parallelism, corpus_size=300, config=cfg))
    handle.wait_until_running()
    return cluster, handle


class TestMetricsPipeline:
    def test_samples_reach_metrics_managers(self):
        cluster, handle = launch()
        cluster.run_for(3.0)
        for mm in handle._runtime.mms.values():
            assert mm.samples_received > 0
            # Every local instance reported at least once.
            assert len(mm.latest) >= 1

    def test_summaries_reach_tmaster(self):
        cluster, handle = launch()
        cluster.run_for(11.0)  # > MM forward interval (5s)
        summaries = handle.tmaster_metrics()
        assert set(summaries) == set(handle._runtime.sms)
        total_executed = sum(m.get("executed", 0)
                             for m in summaries.values())
        # TM's view lags live counters, but is the right order.
        live = handle.totals()["executed"]
        assert total_executed > 0.5 * live

    def test_container_totals_sum_processes(self):
        cluster, handle = launch()
        cluster.run_for(3.0)
        mm = next(iter(handle._runtime.mms.values()))
        totals = mm.container_totals()
        assert totals["emitted"] == sum(
            m.get("emitted", 0) for m in mm.latest.values())

    def test_no_tmaster_metrics_without_tm(self):
        cluster, handle = launch()
        handle._runtime.tmaster.kill()
        assert handle.tmaster_metrics() == {}

    def test_metrics_survive_tm_failover(self):
        cluster = HeronCluster.on_yarn(machines=4)
        cfg = Config().set(Keys.BATCH_SIZE, 50)
        handle = cluster.submit_topology(
            wordcount_topology(2, corpus_size=300, config=cfg))
        handle.wait_until_running()
        cluster.run_for(6.0)
        tm_container = next(
            jc.container for jc in
            cluster.framework.job_containers("wordcount")
            if jc.role == "tmaster")
        cluster.cluster.fail_container(tm_container)
        cluster.run_for(12.0)  # recovery + next forward cycle
        assert handle.tmaster_metrics()  # the NEW TM collects again
