"""Tests for the discrete-event loop."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation.events import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, seen.append, "late")
        sim.schedule(1.0, seen.append, "early")
        sim.run_until(3.0)
        assert seen == ["early", "late"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(1.0, seen.append, i)
        sim.run_until(1.0)
        assert seen == [0, 1, 2, 3, 4]

    def test_now_is_event_time_inside_callback(self):
        sim = Simulator()
        observed = []
        sim.schedule(1.5, lambda: observed.append(sim.now))
        sim.run_until(10.0)
        assert observed == [1.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.run_until(5.0)
        seen = []
        sim.schedule_at(7.0, seen.append, "x")
        sim.run_until(10.0)
        assert seen == ["x"]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(("first", sim.now))
            sim.schedule(1.0, lambda: seen.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run_until(5.0)
        assert seen == [("first", 1.0), ("second", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, seen.append, "x")
        handle.cancel()
        sim.run_until(2.0)
        assert seen == []

    def test_cancel_is_idempotent(self):
        handle = Simulator().schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()


class TestRun:
    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0  # lint: allow[D005] exact by construction

    def test_run_until_past_is_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_run_for(self):
        sim = Simulator()
        sim.run_until(5.0)
        sim.run_for(2.5)
        assert sim.now == 7.5  # lint: allow[D005] exact by construction

    def test_run_leaves_future_events_pending(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, seen.append, "later")
        sim.run_until(5.0)
        assert seen == []
        assert sim.pending_events == 1
        sim.run_until(10.0)
        assert seen == ["later"]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_runs_one_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, seen.append, "b")
        assert sim.step() is True
        assert seen == ["a"]
        assert sim.now == 1.0  # lint: allow[D005] exact by construction

    def test_drain_runs_everything(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(2.0, seen.append, 2)
        sim.drain()
        assert seen == [1, 2]

    def test_drain_detects_livelock(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.drain(max_events=1000)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert sim.events_processed == 3


class TestRepeating:
    def test_every_fires_at_interval(self):
        sim = Simulator()
        times = []
        sim.every(1.0, lambda: times.append(sim.now))
        sim.run_until(3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        times = []
        timer = sim.every(1.0, lambda: times.append(sim.now))
        sim.run_until(2.5)
        timer.stop()
        sim.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        times = []

        def tick():
            times.append(sim.now)
            if len(times) == 2:
                timer.stop()

        timer = sim.every(1.0, tick)
        sim.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_reschedule_changes_interval(self):
        sim = Simulator()
        times = []
        timer = sim.every(1.0, lambda: times.append(sim.now))
        sim.run_until(1.5)
        timer.reschedule(0.25)
        sim.run_until(2.0)
        assert times == [1.0, 1.75, 2.0]

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)
