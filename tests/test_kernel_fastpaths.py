"""Tests for the kernel fast paths: compaction, O(1) counts, re-arm.

The seed kernel cancelled events by tombstone and left them in the heap
until their (possibly far-future) deadline, scanned the whole heap for
``pending_events``, and allocated a fresh handle per timer fire. These
tests pin the fast-path behaviours: cancel-heavy churn keeps the heap
bounded, the live count stays exact through every transition, and a
``RepeatingEvent`` re-arms one handle without racing ``reschedule()`` or
``stop()``.
"""

from repro.simulation.actors import Actor, Location
from repro.simulation.events import Simulator
from repro.simulation.network import UniformNetwork


def _noop() -> None:
    pass


class TestHeapCompaction:
    def test_cancel_churn_keeps_heap_bounded(self):
        """The ack-timeout pattern: far-future guards cancelled at once.

        The seed heap would hold all 20K tombstones until t=1000; the
        compacting kernel keeps physical size within a small multiple of
        the live count.
        """
        sim = Simulator()
        for _ in range(20_000):
            sim.schedule(1000.0, _noop).cancel()
        assert sim.pending_events == 0
        assert sim.heap_size < 1_000
        assert sim.compactions > 0

    def test_live_events_survive_compaction(self):
        sim = Simulator()
        seen = []
        keepers = [sim.schedule(1.0 + i * 0.001, seen.append, i)
                   for i in range(100)]
        for _ in range(5_000):
            sim.schedule(500.0, _noop).cancel()
        assert sim.pending_events == len(keepers)
        sim.run_until(2.0)
        assert seen == list(range(100))

    def test_compaction_inside_run_until(self):
        """Cancelling from a callback mid-run must not lose events."""
        sim = Simulator()
        seen = []

        def churn() -> None:
            for _ in range(2_000):
                sim.schedule(100.0, _noop).cancel()

        sim.schedule(0.5, churn)
        sim.schedule(1.0, seen.append, "after-churn")
        sim.run_until(2.0)
        assert seen == ["after-churn"]
        assert sim.heap_size < 500

    def test_pending_events_tracks_every_transition(self):
        sim = Simulator()
        assert sim.pending_events == 0
        handles = [sim.schedule(float(i + 1), _noop) for i in range(10)]
        assert sim.pending_events == 10
        handles[0].cancel()
        handles[0].cancel()  # idempotent: must not double-decrement
        assert sim.pending_events == 9
        sim.run_until(5.0)  # fires events at t=2..5
        assert sim.pending_events == 5

    def test_small_heaps_are_never_compacted(self):
        """Below the size floor a rebuild costs more than it saves."""
        sim = Simulator()
        for _ in range(10):
            sim.schedule(10.0, _noop).cancel()
        assert sim.compactions == 0


class TestActorKillChurn:
    def test_kill_storm_does_not_accumulate_tombstones(self):
        """Container kill/replace cycles must not grow the heap.

        Every kill cancels the actor's timers and in-flight completion;
        those tombstones now register compaction pressure instead of
        lingering until each timer's next deadline.
        """
        sim = Simulator()
        network = UniformNetwork(0.0)
        for wave in range(300):
            actors = [Actor(sim, f"a{wave}-{i}", Location.of(0, 0, i),
                            network=network) for i in range(8)]
            for actor in actors:
                actor.every(0.01, _noop)
                actor.every(1.0, _noop)
            sim.run_for(0.005)
            for actor in actors:
                actor.kill()
        assert sim.pending_events == 0
        assert sim.heap_size < 1_000


class TestRepeatingRearm:
    def test_rearm_reuses_one_handle(self):
        sim = Simulator()
        fires = []
        timer = sim.every(0.1, lambda: fires.append(sim.now))
        handle = timer._handle
        sim.run_for(5.0)
        assert len(fires) == 50
        assert timer._handle is handle  # no per-fire allocation
        assert sim.heap_size <= 2

    def test_reschedule_inside_callback_no_double_fire(self):
        sim = Simulator()
        fires = []

        def fire() -> None:
            fires.append(sim.now)
            if len(fires) == 1:
                timer.reschedule(0.5)

        timer = sim.every(0.1, fire)
        sim.run_for(2.0)
        # One fire at 0.1, then every 0.5 from there: 0.6, 1.1, 1.6.
        assert fires == [0.1, 0.6, 1.1, 1.6]

    def test_stop_then_reschedule_stays_stopped(self):
        sim = Simulator()
        fires = []
        timer = sim.every(0.1, lambda: fires.append(sim.now))
        sim.run_for(0.25)
        timer.stop()
        timer.reschedule(0.05)
        sim.run_for(1.0)
        assert fires == [0.1, 0.2]
        assert sim.pending_events == 0

    def test_stop_inside_callback_cancels_cleanly(self):
        sim = Simulator()
        fires = []

        def fire() -> None:
            fires.append(sim.now)
            timer.stop()

        timer = sim.every(0.1, fire)
        sim.run_for(1.0)
        assert fires == [0.1]
        assert sim.pending_events == 0

    def test_reschedule_outside_callback_restarts_from_now(self):
        sim = Simulator()
        fires = []
        timer = sim.every(1.0, lambda: fires.append(sim.now))
        sim.run_for(0.5)
        timer.reschedule(0.25)
        sim.run_for(0.5)
        assert fires == [0.75, 1.0]
        # The cancelled original arm must not fire at t=1.0 again.
        sim.run_for(0.1)
        assert fires == [0.75, 1.0]
