"""Tests for the workloads: corpus, WordCount, Kafka/Redis pipeline."""

import copy

import pytest

from repro.api.component import ComponentContext
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.tuples import Batch
from repro.common.config import Config
from repro.workloads.corpus import corpus
from repro.workloads.external import KafkaBroker, RedisServer
from repro.workloads.kafka_redis import (AggregateBolt, FilterBolt,
                                         RedisSinkBolt,
                                         kafka_redis_topology)
from repro.workloads.wordcount import CountBolt, WordSpout, \
    wordcount_topology


class FakeCollector:
    def __init__(self):
        self.values = []
        self.counts = []

    def emit(self, values, stream="default", anchors=None):
        self.values.append(values)
        self.counts.append(1)

    def emit_batch(self, values, count=None, stream="default"):
        self.values.extend(values)
        self.counts.append(count if count is not None else len(values))

    def ack(self, tup):
        pass

    def fail(self, tup):
        pass

    @property
    def total(self):
        return sum(self.counts)


def context(config=None, task_id=0, parallelism=2):
    ctx = ComponentContext("t", "c", task_id, parallelism,
                           config or Config())
    return ctx


class TestCorpus:
    def test_size_and_uniqueness(self):
        words = corpus(10_000)
        assert len(words) == 10_000
        assert len(set(words)) == 10_000

    def test_memoized(self):
        assert corpus(1000) is corpus(1000)

    def test_deterministic(self):
        assert corpus(100)[:5] == corpus(100)[:5]

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            corpus(0)


class TestWordSpout:
    def test_full_fidelity_batch(self):
        spout = WordSpout(corpus_size=100)
        spout.open(context(), FakeCollector())
        collector = FakeCollector()
        emitted = spout.next_batch(collector, 50)
        assert emitted == 50
        assert len(collector.values) == 50
        assert collector.total == 50

    def test_sampled_batch(self):
        config = Config().set(Keys.SAMPLE_CAP, 8)
        spout = WordSpout(corpus_size=100)
        spout.open(context(config), FakeCollector())
        collector = FakeCollector()
        spout.next_batch(collector, 1000)
        assert len(collector.values) == 8
        assert collector.total == 1000

    def test_next_tuple(self):
        spout = WordSpout(corpus_size=100)
        spout.open(context(), FakeCollector())
        collector = FakeCollector()
        spout.next_tuple(collector)
        assert len(collector.values) == 1

    def test_different_tasks_different_streams(self):
        first, second = WordSpout(corpus_size=100), WordSpout(corpus_size=100)
        first.open(context(task_id=0), FakeCollector())
        second.open(context(task_id=1), FakeCollector())
        c1, c2 = FakeCollector(), FakeCollector()
        first.next_batch(c1, 20)
        second.next_batch(c2, 20)
        assert c1.values != c2.values

    def test_ack_fail_counters(self):
        spout = WordSpout()
        spout.ack(1)
        spout.fail(2)
        assert spout.acks_seen == 1
        assert spout.fails_seen == 1


class TestCountBolt:
    def test_full_fidelity_counts(self):
        bolt = CountBolt()
        batch = Batch(values=[["a"], ["b"], ["a"]], count=3)
        bolt.execute_batch(batch, FakeCollector())
        assert bolt.counts["a"] == 2
        assert bolt.counts["b"] == 1

    def test_weighted_counts(self):
        bolt = CountBolt()
        batch = Batch(values=[["a"], ["b"]], count=100)
        bolt.execute_batch(batch, FakeCollector())
        assert bolt.counts["a"] == pytest.approx(50.0)
        assert sum(bolt.counts.values()) == pytest.approx(100.0)

    def test_empty_batch(self):
        bolt = CountBolt()
        bolt.execute_batch(Batch(values=[], count=0), FakeCollector())
        assert not bolt.counts


class TestKafkaBroker:
    def test_token_bucket(self):
        broker = KafkaBroker(events_per_sec=1000)
        consumer = broker.assign(0, 1)
        assert consumer.available(0.0) == 0
        assert consumer.available(1.0) == 1000
        values, count = consumer.poll(1.0, 400)
        assert count == 400
        assert consumer.available(1.0) == 600

    def test_min_fetch_batches_up(self):
        broker = KafkaBroker(events_per_sec=10_000)
        consumer = broker.assign(0, 1)
        consumer.poll(1.0, 10_000)  # drain, sets last_fetch
        # Only ~10 events available shortly after: below min_fetch.
        values, count = consumer.poll(1.001, 1000)
        assert count == 0
        # After max_wait, even a small fetch is returned.
        values, count = consumer.poll(1.001 + consumer.max_wait, 1000)
        assert count > 0

    def test_consumers_share_rate(self):
        broker = KafkaBroker(events_per_sec=1000)
        first = broker.assign(0, 2)
        second = broker.assign(1, 2)
        assert first.available(1.0) == 500
        assert second.available(1.0) == 500

    def test_sampling_cap(self):
        broker = KafkaBroker(events_per_sec=10_000)
        consumer = broker.assign(0, 1)
        values, count = consumer.poll(1.0, 5000, concrete_cap=16)
        assert count == 5000
        assert len(values) == 16

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            KafkaBroker(events_per_sec=0)
        with pytest.raises(ValueError):
            KafkaBroker(1000).assign(5, 2)

    def test_deepcopy_is_shared(self):
        broker = KafkaBroker(events_per_sec=1000)
        assert copy.deepcopy(broker) is broker


class TestFilterBolt:
    def test_selectivity_exact(self):
        bolt = FilterBolt(selectivity=0.4)
        collector = FakeCollector()
        broker = KafkaBroker(events_per_sec=1000)
        events = [broker.make_event(i) for i in range(1700)]
        for event in events:
            from repro.api.tuples import Tuple
            bolt.execute(Tuple(values=event), collector)
        observed = bolt.passed / (bolt.passed + bolt.dropped)
        assert observed == pytest.approx(0.4, abs=0.08)

    def test_batch_mode_weights(self):
        bolt = FilterBolt(selectivity=0.5)
        values = [["k", kind, 1] for kind in range(17)]
        batch = Batch(values=values, count=1700)
        collector = FakeCollector()
        bolt.execute_batch(batch, collector)
        assert bolt.passed + bolt.dropped == 1700

    def test_bad_selectivity_rejected(self):
        with pytest.raises(ValueError):
            FilterBolt(selectivity=0.0)


class TestAggregateBolt:
    def test_emits_every_ratio_inputs(self):
        bolt = AggregateBolt(ratio=10)
        collector = FakeCollector()
        from repro.api.tuples import Tuple
        for i in range(25):
            bolt.execute(Tuple(values=[f"k{i % 3}", 0, 1.0]), collector)
        assert len(collector.values) == 2  # 25 // 10

    def test_weighted_batches(self):
        bolt = AggregateBolt(ratio=100)
        collector = FakeCollector()
        batch = Batch(values=[["k", 0, 1.0]], count=250)
        bolt.execute_batch(batch, collector)
        assert len(collector.values) == 2  # 250 // 100

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            AggregateBolt(ratio=0)


class TestRedisSink:
    def test_writes_recorded(self):
        server = RedisServer()
        bolt = RedisSinkBolt(server)
        from repro.api.tuples import Tuple
        bolt.execute(Tuple(values=["key1", 42.0]), FakeCollector())
        assert server.writes == 1
        assert server.store["key1"] == 42.0

    def test_batch_writes_weighted(self):
        server = RedisServer()
        bolt = RedisSinkBolt(server)
        batch = Batch(values=[["k1", 1.0], ["k2", 2.0]], count=10)
        bolt.execute_batch(batch, FakeCollector())
        assert server.writes == 2
        assert server.records_written == 10

    def test_deepcopy_is_shared(self):
        server = RedisServer()
        assert copy.deepcopy(server) is server


class TestTopologyFactories:
    def test_wordcount_topology(self):
        topology = wordcount_topology(4)
        assert topology.parallelism_of("word") == 4
        assert topology.parallelism_of("count") == 4

    def test_kafka_redis_topology(self):
        topology, broker, redis = kafka_redis_topology(
            events_per_min=6e6, spouts=2, filters=2, aggregators=2, sinks=1)
        assert topology.components() == ["kafka", "filter", "aggregate",
                                         "sink"]
        assert broker.events_per_sec == pytest.approx(100_000.0)
        assert redis.writes == 0
