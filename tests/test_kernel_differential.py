"""Differential testing: heap vs calendar kernel, same semantics.

The calendar queue replaces the binary heap behind the identical
``Simulator`` API and must preserve the (time, seq) tie-order contract
EXACTLY — not just "events in time order" but byte-identical pop
sequences, so every trace recorded under one kernel replays under the
other. Two layers pin that down:

* a randomized property test drives both kernels through the same
  seeded schedule/cancel/re-arm/pop script and asserts identical pop
  order, identical ``now``, and identical ``pending_events`` after
  every operation;
* a workload test runs WordCount under each kernel with the
  sanitizer's kernel trace enabled and asserts the traces (time, seq,
  callback qualname) are byte-identical.
"""

from __future__ import annotations

import random

import pytest

from repro.simulation.events import Simulator

N_OPS = 700


def _script(seed: int, n_ops: int = N_OPS) -> list:
    """One seeded operation script, pure data (applied to both kernels).

    Delays mix three magnitudes so entries land in the open bucket, the
    day array, and the overflow ladder; cancels and re-arms churn
    tombstones through all three structures.
    """
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.40:
            delay = rng.uniform(0.0, 2.0) * rng.choice([1e-6, 1e-3, 1.0])
            ops.append(("schedule", delay))
        elif roll < 0.52:
            ops.append(("cancel", rng.randrange(1 << 30)))
        elif roll < 0.60:
            ops.append(("rearm", rng.randrange(1 << 30),
                        rng.uniform(1e-4, 0.5)))
        elif roll < 0.66:
            ops.append(("every", rng.uniform(1e-3, 0.1)))
        elif roll < 0.70:
            ops.append(("stop_timer", rng.randrange(1 << 30)))
        elif roll < 0.90:
            ops.append(("step", rng.randrange(1, 6)))
        else:
            ops.append(("run_until", rng.uniform(0.0, 0.3)))
    return ops


def _drive(kernel: str, ops: list):
    """Apply one script to a fresh kernel; return its observable story."""
    sim = Simulator(kernel=kernel)
    assert sim.kernel == kernel
    log: list = []          # (now, tag) at every callback fire
    trail: list = []        # (op, now, pending, fires) after every op
    handles: list = []
    timers: list = []
    tag = 0

    def fire(t: int) -> None:
        log.append((sim.now, t))

    for op in ops:
        kind = op[0]
        if kind == "schedule":
            handles.append(sim.schedule(op[1], fire, tag))
            tag += 1
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "rearm":
            if handles:
                handles[op[1] % len(handles)].cancel()
                handles.append(sim.schedule(op[2], fire, tag))
                tag += 1
        elif kind == "every":
            timers.append(sim.every(op[1], lambda t=tag: fire(t)))
            tag += 1
        elif kind == "stop_timer":
            if timers:
                timers[op[1] % len(timers)].stop()
        elif kind == "step":
            for _ in range(op[1]):
                if not sim.step():
                    break
        else:  # run_until
            sim.run_until(sim.now + op[1])
        trail.append((kind, sim.now, sim.pending_events, len(log)))
    # Drain: stop the repeating timers, then pop everything left.
    for timer in timers:
        timer.stop()
    while sim.step():
        pass
    trail.append(("drain", sim.now, sim.pending_events, len(log)))
    return log, trail, sim.events_processed


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234, 99991])
def test_identical_pop_order_and_pending(seed):
    ops = _script(seed)
    heap_log, heap_trail, heap_n = _drive("heap", ops)
    cal_log, cal_trail, cal_n = _drive("calendar", ops)
    assert len(heap_log) > 0, "script never fired a callback"
    assert cal_log == heap_log
    assert cal_trail == heap_trail
    assert cal_n == heap_n


def test_pending_events_zero_after_drain():
    ops = _script(5)
    for kernel in ("heap", "calendar"):
        _log, trail, _n = _drive(kernel, ops)
        assert trail[-1][2] == 0, f"{kernel}: live events after drain"


def _wordcount_trace(kernel: str, monkeypatch, limit: int = 5000):
    from repro.core.heron import HeronCluster
    from repro.workloads.wordcount import wordcount_topology
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    cluster = HeronCluster.local(seed=1234)
    assert cluster.sim.kernel == kernel
    cluster.sim.sanitizer.enable_trace(limit)
    handle = cluster.submit_topology(wordcount_topology(2, corpus_size=500))
    handle.wait_until_running()
    cluster.run_for(1.0)
    return cluster.sim.sanitizer.trace, handle.totals()


def test_wordcount_trace_byte_identical(monkeypatch):
    """The determinism-audit guarantee holds ACROSS kernels: a WordCount
    run traces byte-identically under heap and calendar."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    heap_trace, heap_totals = _wordcount_trace("heap", monkeypatch)
    cal_trace, cal_totals = _wordcount_trace("calendar", monkeypatch)
    assert len(heap_trace) > 0
    assert cal_trace == heap_trace
    assert cal_totals == heap_totals
