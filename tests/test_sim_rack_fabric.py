"""Tests for the rack-aware cluster fabric and network latency tiers."""

import pytest

from repro.common.errors import SchedulerError
from repro.common.resources import Resource
from repro.common.units import GB
from repro.simulation.actors import Location
from repro.simulation.cluster import Cluster, Machine, PlacementRequest
from repro.simulation.costs import CostModel
from repro.simulation.network import TIER_NAMES, Network

CAP = Resource(cpu=8, ram=28 * GB, disk=100 * GB)
SMALL = Resource(cpu=2, ram=4 * GB, disk=10 * GB)


def racked(racks=2, per_rack=2):
    return Cluster.racked(racks, per_rack, CAP)


class TestRackTopology:
    def test_rack_major_machine_ids(self):
        cluster = racked(racks=3, per_rack=2)
        assert [m.id for m in cluster.machines] == list(range(6))
        assert cluster.rack_of(0) == 0
        assert cluster.rack_of(1) == 0
        assert cluster.rack_of(2) == 1
        assert cluster.rack_of(5) == 2

    def test_rack_ids_sorted(self):
        assert racked(racks=3).rack_ids() == [0, 1, 2]

    def test_machines_in_rack(self):
        cluster = racked(racks=2, per_rack=3)
        assert [m.id for m in cluster.machines_in_rack(1)] == [3, 4, 5]

    def test_homogeneous_is_single_rack(self):
        cluster = Cluster.homogeneous(4, CAP)
        assert cluster.rack_ids() == [0]

    def test_racked_validates_counts(self):
        with pytest.raises(SchedulerError):
            Cluster.racked(0, 2, CAP)
        with pytest.raises(SchedulerError):
            Cluster.racked(2, 0, CAP)

    def test_unknown_machine_rejected(self):
        with pytest.raises(SchedulerError):
            racked().machine(99)

    def test_duplicate_machine_ids_rejected(self):
        with pytest.raises(SchedulerError):
            Cluster([Machine(0, CAP), Machine(0, CAP)])

    def test_set_rack_moves_machine(self):
        cluster = racked()
        cluster.set_rack(0, 1)
        assert cluster.rack_of(0) == 1
        assert [m.id for m in cluster.machines_in_rack(1)] == [0, 2, 3]

    def test_set_rack_notifies_observers(self):
        cluster = racked()
        calls = []
        cluster.on_rack_change(lambda: calls.append(1))
        cluster.set_rack(0, 1)
        assert calls == [1]

    def test_set_rack_same_rack_is_noop(self):
        cluster = racked()
        calls = []
        cluster.on_rack_change(lambda: calls.append(1))
        cluster.set_rack(0, 0)
        assert calls == []


class TestPlacementRequests:
    def test_preferred_machine_honored(self):
        cluster = racked()
        container = cluster.allocate_container(SMALL, preferred_machine=3)
        assert container.machine.id == 3

    def test_full_preferred_machine_falls_back_to_rack(self):
        cluster = racked()
        cluster.allocate_container(CAP, preferred_machine=2)  # fill 2
        container = cluster.allocate_container(
            SMALL, preferred_machine=2, preferred_rack=1)
        assert container.machine.id == 3  # rack 1's other machine

    def test_preferred_rack_fills_in_id_order(self):
        cluster = racked()
        a = cluster.allocate_container(SMALL, preferred_rack=1)
        b = cluster.allocate_container(SMALL, preferred_rack=1)
        assert a.machine.id == 2 and b.machine.id == 2

    def test_full_rack_falls_back_to_first_fit(self):
        cluster = racked()
        cluster.allocate_container(CAP, preferred_rack=1)
        cluster.allocate_container(CAP, preferred_rack=1)
        spilled = cluster.allocate_container(SMALL, preferred_rack=1)
        assert spilled.machine.id == 0

    def test_unknown_preferred_machine_is_soft(self):
        cluster = racked()
        container = cluster.allocate_container(SMALL, preferred_machine=42)
        assert container.machine.id == 0

    def test_no_fit_anywhere_raises(self):
        cluster = racked()
        with pytest.raises(SchedulerError):
            cluster.allocate(PlacementRequest(Resource(cpu=100),
                                              preferred_rack=0))

    def test_request_tag_applied(self):
        cluster = racked()
        container = cluster.allocate(PlacementRequest(SMALL, tag="topo"))
        assert container.tag == "topo"


class TestNetworkRackTiers:
    def setup_method(self):
        self.costs = CostModel()
        self.cluster = racked(racks=2, per_rack=2)
        self.net = Network(self.costs)
        self.net.bind_cluster(self.cluster)

    def test_same_rack_tier(self):
        a, b = Location.of(0, 0, 0), Location.of(1, 1, 0)
        assert self.net.latency(a, b) == self.costs.net_same_rack

    def test_cross_rack_tier(self):
        a, b = Location.of(0, 0, 0), Location.of(2, 1, 0)
        assert self.net.latency(a, b) == self.costs.net_cross_rack

    def test_unbound_network_prices_cross_machine(self):
        net = Network(self.costs)
        a, b = Location.of(0, 0, 0), Location.of(2, 1, 0)
        assert net.latency(a, b) == self.costs.net_cross_machine

    def test_tiers_are_ordered(self):
        same_machine = self.net.latency(Location.of(0, 0, 0),
                                        Location.of(0, 1, 0))
        same_rack = self.net.latency(Location.of(0, 0, 0),
                                     Location.of(1, 0, 0))
        cross_rack = self.net.latency(Location.of(0, 0, 0),
                                      Location.of(2, 0, 0))
        assert same_machine < same_rack <= cross_rack

    def test_tier_counters(self):
        self.net.latency(Location.of(0, 0, 0), Location.of(1, 0, 0))
        self.net.latency(Location.of(0, 0, 0), Location.of(2, 0, 0))
        self.net.latency(Location.of(0, 0, 0), Location.of(2, 0, 0))
        counts = self.net.tier_counts()
        assert counts["same_rack"] == 1
        assert counts["cross_rack"] == 2
        assert self.net.cross_rack_share() == pytest.approx(2 / 3)

    def test_reset_tier_counts(self):
        self.net.latency(Location.of(0, 0, 0), Location.of(2, 0, 0))
        self.net.reset_tier_counts()
        assert sum(self.net.tier_counts().values()) == 0
        assert self.net.cross_rack_share() == 0.0

    def test_tier_names_cover_all_tiers(self):
        assert len(TIER_NAMES) == 6
        assert set(self.net.tier_counts()) == set(TIER_NAMES)


class TestRackChangeInvalidation:
    """Regression: memoized latencies must not survive rack rebinding."""

    def test_set_rack_invalidates_memo(self):
        costs = CostModel()
        cluster = Cluster.racked(2, 2, CAP)
        net = Network(costs)
        net.bind_cluster(cluster)
        a, b = Location.of(0, 0, 0), Location.of(1, 0, 0)
        assert net.latency(a, b) == costs.net_same_rack  # memoized
        cluster.set_rack(1, 1)
        assert net.latency(a, b) == costs.net_cross_rack

    def test_bind_cluster_invalidates_memo(self):
        costs = CostModel()
        net = Network(costs)
        a, b = Location.of(0, 0, 0), Location.of(2, 0, 0)
        assert net.latency(a, b) == costs.net_cross_machine  # unbound
        net.bind_cluster(Cluster.racked(2, 2, CAP))
        assert net.latency(a, b) == costs.net_cross_rack
