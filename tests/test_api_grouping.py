"""Tests for stream groupings and batch splitting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api.grouping import (AllGrouping, CustomGrouping, DirectGrouping,
                                FieldsGrouping, GlobalGrouping, NoneGrouping,
                                ShuffleGrouping, allocate_proportionally,
                                stable_hash)
from repro.common.errors import TopologyError

TASKS = [0, 1, 2, 3]


def words(values):
    return [[w] for w in values]


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("heron") == stable_hash("heron")

    def test_types_covered(self):
        for value in ["s", b"b", 7, -1, 2.5, True, ("a", 1), ["x"], None]:
            assert isinstance(stable_hash(value), int)
            assert stable_hash(value) >= 0

    def test_tuple_order_matters(self):
        assert stable_hash(("a", "b")) != stable_hash(("b", "a"))


class TestAllocateProportionally:
    def test_exact_split(self):
        assert allocate_proportionally([1, 1], 10) == [5, 5]

    def test_rounding_conserves_total(self):
        result = allocate_proportionally([1, 1, 1], 10)
        assert sum(result) == 10

    def test_proportions_respected(self):
        assert allocate_proportionally([3, 1], 8) == [6, 2]

    def test_zero_total(self):
        assert allocate_proportionally([1, 2], 0) == [0, 0]

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            allocate_proportionally([1], -1)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            allocate_proportionally([0, 0], 5)

    @given(weights=st.lists(st.floats(min_value=0.01, max_value=100),
                            min_size=1, max_size=10),
           total=st.integers(min_value=0, max_value=100_000))
    def test_always_sums_to_total(self, weights, total):
        assert sum(allocate_proportionally(weights, total)) == total


class TestShuffleGrouping:
    def test_even_split(self):
        inst = ShuffleGrouping().create([], TASKS)
        routes = inst.split([], [], 100)
        assert sum(r[3] for r in routes) == 100
        counts = [r[3] for r in routes]
        assert max(counts) - min(counts) <= 1

    def test_remainder_rotates(self):
        inst = ShuffleGrouping().create([], [0, 1])
        first = dict((r[0], r[3]) for r in inst.split([], [], 3))
        second = dict((r[0], r[3]) for r in inst.split([], [], 3))
        # Over two calls the load evens out.
        assert first[0] + second[0] == first[1] + second[1]

    def test_concrete_values_distributed(self):
        inst = ShuffleGrouping().create([], [0, 1])
        routes = inst.split(words(["a", "b", "c", "d"]), [1, 2, 3, 4], 4)
        all_values = sorted(v[0] for r in routes for v in r[1])
        all_ids = sorted(i for r in routes for i in r[2])
        assert all_values == ["a", "b", "c", "d"]
        assert all_ids == [1, 2, 3, 4]

    def test_ids_stay_aligned_with_values(self):
        inst = ShuffleGrouping().create([], [0, 1, 2])
        routes = inst.split(words(["a", "b", "c"]), [10, 20, 30], 3)
        pairing = {v[0]: tid for r in routes for v, tid in zip(r[1], r[2])}
        assert pairing == {"a": 10, "b": 20, "c": 30}

    def test_zero_count(self):
        inst = ShuffleGrouping().create([], TASKS)
        assert inst.split([], [], 0) == []

    def test_none_grouping_behaves_like_shuffle(self):
        inst = NoneGrouping().create([], TASKS)
        assert sum(r[3] for r in inst.split([], [], 40)) == 40

    def test_empty_tasks_rejected(self):
        with pytest.raises(TopologyError):
            ShuffleGrouping().create([], [])


class TestFieldsGrouping:
    def test_same_key_same_task(self):
        inst = FieldsGrouping(["word"]).create(["word"], TASKS)
        routes1 = inst.split(words(["heron"]), [], 1)
        routes2 = inst.split(words(["heron"]), [], 1)
        assert routes1[0][0] == routes2[0][0]

    def test_different_instances_agree(self):
        """Two SMs routing the same key must pick the same task."""
        grouping = FieldsGrouping(["word"])
        a = grouping.create(["word"], TASKS)
        b = grouping.create(["word"], TASKS)
        for word in ["a", "b", "storm", "heron", "zookeeper"]:
            assert a.split(words([word]), [], 1)[0][0] == \
                b.split(words([word]), [], 1)[0][0]

    def test_multi_field_key(self):
        inst = FieldsGrouping(["a", "b"]).create(["a", "b", "c"], TASKS)
        routes = inst.split([[1, 2, "x"], [1, 2, "y"]], [], 2)
        assert len(routes) == 1  # same (a, b) key -> one task

    def test_count_follows_sample_proportions(self):
        inst = FieldsGrouping(["word"]).create(["word"], [0, 1])
        # Find two words hashing to different tasks.
        vocab = [f"w{i}" for i in range(100)]
        by_task = {}
        for word in vocab:
            task = inst.split(words([word]), [], 1)[0][0]
            by_task.setdefault(task, word)
            if len(by_task) == 2:
                break
        w0, w1 = by_task[0], by_task[1]
        routes = inst.split(words([w0, w0, w0, w1]), [], 400)
        shares = {r[0]: r[3] for r in routes}
        assert shares[0] == 300
        assert shares[1] == 100

    def test_empty_sample_falls_back_to_even(self):
        inst = FieldsGrouping(["word"]).create(["word"], TASKS)
        routes = inst.split([], [], 8)
        assert sum(r[3] for r in routes) == 8

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            FieldsGrouping(["nope"]).create(["word"], TASKS)

    def test_no_fields_rejected(self):
        with pytest.raises(TopologyError):
            FieldsGrouping([])

    @given(vocab=st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6),
                          min_size=1, max_size=30),
           count=st.integers(min_value=1, max_value=10_000))
    def test_count_conserved(self, vocab, count):
        count = max(count, len(vocab))
        inst = FieldsGrouping(["word"]).create(["word"], TASKS)
        routes = inst.split(words(vocab), [], count)
        assert sum(r[3] for r in routes) == count


class TestAllGrouping:
    def test_broadcasts_to_every_task(self):
        inst = AllGrouping().create([], TASKS)
        routes = inst.split(words(["x"]), [7], 5)
        assert len(routes) == len(TASKS)
        for _task, values, ids, count in routes:
            assert values == [["x"]]
            assert ids == [7]
            assert count == 5


class TestGlobalGrouping:
    def test_everything_to_lowest_task(self):
        inst = GlobalGrouping().create([], [3, 1, 2])
        routes = inst.split(words(["x", "y"]), [], 10)
        assert routes == [(1, [["x"], ["y"]], [], 10)]

    def test_zero_count_empty(self):
        inst = GlobalGrouping().create([], TASKS)
        assert inst.split([], [], 0) == []


class TestCustomGrouping:
    def test_chooser_invoked(self):
        inst = CustomGrouping(
            lambda values, tasks: tasks[values[0] % len(tasks)]
        ).create([], [0, 1])
        routes = inst.split([[0], [1], [2]], [], 3)
        shares = {r[0]: r[3] for r in routes}
        assert shares == {0: 2, 1: 1}

    def test_bad_task_rejected(self):
        inst = CustomGrouping(lambda values, tasks: 999).create([], TASKS)
        with pytest.raises(TopologyError):
            inst.split([[1]], [], 1)

    def test_needs_concrete_values(self):
        inst = CustomGrouping(lambda v, t: t[0]).create([], TASKS)
        with pytest.raises(TopologyError):
            inst.split([], [], 10)

    def test_non_callable_rejected(self):
        with pytest.raises(TopologyError):
            CustomGrouping("not callable")  # type: ignore[arg-type]


class TestDirectGrouping:
    def test_last_field_is_destination(self):
        inst = DirectGrouping().create([], TASKS)
        routes = inst.split([["payload", 2], ["other", 0]], [], 2)
        assert {r[0] for r in routes} == {0, 2}
