"""Tests for repro.common.units."""

import pytest

from repro.common import units


class TestFormatDuration:
    def test_microseconds(self):
        assert units.format_duration(2.5e-6) == "2.500us"

    def test_milliseconds(self):
        assert units.format_duration(0.0025) == "2.500ms"

    def test_seconds(self):
        assert units.format_duration(1.5) == "1.500s"

    def test_minutes(self):
        assert units.format_duration(90) == "1.50min"

    def test_negative(self):
        assert units.format_duration(-0.0025) == "-2.500ms"

    def test_zero(self):
        assert units.format_duration(0.0) == "0.000us"


class TestFormatBytes:
    def test_bytes(self):
        assert units.format_bytes(512) == "512B"

    def test_kilobytes(self):
        assert units.format_bytes(2048) == "2.0KB"

    def test_megabytes(self):
        assert units.format_bytes(3 * units.MB) == "3.0MB"

    def test_gigabytes(self):
        assert units.format_bytes(2 * units.GB) == "2.00GB"

    def test_negative(self):
        assert units.format_bytes(-2048) == "-2.0KB"


class TestRates:
    def test_tuples_per_min(self):
        assert units.tuples_per_min(100, 60.0) == pytest.approx(100.0)

    def test_tuples_per_min_scales(self):
        assert units.tuples_per_min(50, 30.0) == pytest.approx(100.0)

    def test_millions_per_min(self):
        assert units.millions_per_min(2e6, 60.0) == pytest.approx(2.0)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            units.tuples_per_min(1, 0.0)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            units.millions_per_min(1, -5.0)
