"""Tests for the Resource value type, including algebraic properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.resources import Resource
from repro.common.units import GB, MB

resources = st.builds(
    Resource,
    cpu=st.floats(min_value=0, max_value=1024, allow_nan=False),
    ram=st.integers(min_value=0, max_value=1 << 40),
    disk=st.integers(min_value=0, max_value=1 << 40),
)


class TestConstruction:
    def test_defaults_are_zero(self):
        assert Resource() == Resource(0.0, 0, 0)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            Resource(cpu=-1.0)

    def test_negative_ram_rejected(self):
        with pytest.raises(ValueError):
            Resource(ram=-1)

    def test_negative_disk_rejected(self):
        with pytest.raises(ValueError):
            Resource(disk=-1)

    def test_is_frozen(self):
        res = Resource(1.0, 2, 3)
        with pytest.raises(AttributeError):
            res.cpu = 5.0  # type: ignore[misc]


class TestArithmetic:
    def test_add(self):
        assert Resource(1, 2, 3) + Resource(4, 5, 6) == Resource(5, 7, 9)

    def test_sub(self):
        assert Resource(4, 5, 6) - Resource(1, 2, 3) == Resource(3, 3, 3)

    def test_sub_underflow_rejected(self):
        with pytest.raises(ValueError):
            Resource(1, 0, 0) - Resource(2, 0, 0)

    def test_scale(self):
        assert Resource(2.0, 100, 10).scale(1.5) == Resource(3.0, 150, 15)

    def test_scale_negative_rejected(self):
        with pytest.raises(ValueError):
            Resource(1, 1, 1).scale(-1)

    def test_total(self):
        parts = [Resource(1, 1, 1), Resource(2, 2, 2), Resource(3, 3, 3)]
        assert Resource.total(parts) == Resource(6, 6, 6)

    def test_total_empty(self):
        assert Resource.total([]) == Resource.zero()


class TestComparisons:
    def test_fits_in_true(self):
        assert Resource(1, 1 * GB, 0).fits_in(Resource(2, 2 * GB, 1 * GB))

    def test_fits_in_false_on_any_dimension(self):
        big = Resource(2, 2 * GB, 2 * GB)
        assert not Resource(3, 1, 1).fits_in(big)
        assert not Resource(1, 3 * GB, 1).fits_in(big)
        assert not Resource(1, 1, 3 * GB).fits_in(big)

    def test_fits_in_tolerates_float_noise(self):
        # 0.1 * 3 != 0.3 exactly; fits_in must not reject on epsilon error.
        need = Resource(cpu=0.1 + 0.1 + 0.1)
        assert need.fits_in(Resource(cpu=0.3))

    def test_dominates(self):
        assert Resource(2, 2, 2).dominates(Resource(1, 2, 0))
        assert not Resource(2, 2, 2).dominates(Resource(3, 0, 0))

    def test_max_with(self):
        left = Resource(1, 4 * MB, 9)
        right = Resource(3, 2 * MB, 10)
        assert left.max_with(right) == Resource(3, 4 * MB, 10)

    def test_is_zero(self):
        assert Resource.zero().is_zero
        assert not Resource(cpu=0.1).is_zero


class TestProperties:
    @given(resources, resources)
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    @given(resources, resources)
    def test_sub_then_add_roundtrips(self, a, b):
        total = a + b
        recovered = total - b
        assert recovered.cpu == pytest.approx(a.cpu)
        assert recovered.ram == a.ram
        assert recovered.disk == a.disk

    @given(resources, resources)
    def test_sum_dominates_parts(self, a, b):
        assert (a + b).dominates(a)
        assert (a + b).dominates(b)

    @given(resources, resources)
    def test_max_with_dominates_both(self, a, b):
        merged = a.max_with(b)
        assert merged.dominates(a)
        assert merged.dominates(b)

    @given(resources)
    def test_fits_in_reflexive(self, a):
        assert a.fits_in(a)
