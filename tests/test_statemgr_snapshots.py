"""State Manager semantics under the checkpoint tree.

The checkpointing subsystem leans on specific State Manager behaviours
along the ``/topologies/<name>/checkpoints`` paths: versioned overwrite
of the ``latest`` pointer and of re-committed snapshot blobs, one-shot
watches that must be re-registered after a prune deletes their node, and
ephemeral sessions whose nodes never outlive a localfs restart even when
they live next to persistent snapshot state. These are the contracts
:class:`~repro.checkpoint.snapshot.CheckpointStore` relies on, pinned
down directly against both backends.
"""

import pytest

from repro.statemgr.base import WatchEventType
from repro.statemgr.inmemory import InMemoryStateManager
from repro.statemgr.localfs import LocalFileSystemStateManager
from repro.statemgr.paths import TopologyPaths


@pytest.fixture(params=["inmemory", "localfs"])
def statemgr(request, tmp_path):
    if request.param == "inmemory":
        return InMemoryStateManager()
    return LocalFileSystemStateManager(tmp_path / "state")


PATHS = TopologyPaths("wc")


class TestVersionedOverwrite:
    def test_latest_pointer_versions_monotonically(self, statemgr):
        statemgr.put(PATHS.checkpoints_latest, b"1")
        statemgr.put(PATHS.checkpoints_latest, b"2")
        statemgr.put(PATHS.checkpoints_latest, b"3")
        data, version = statemgr.get(PATHS.checkpoints_latest)
        assert (data, version) == (b"3", 2)

    def test_recommit_overwrites_blob(self, statemgr):
        # A coordinator death mid-commit leaves a partial tree; the next
        # commit of the same id must plainly overwrite the blobs.
        blob_path = PATHS.checkpoint_state(1, "count", 3)
        statemgr.put(blob_path, b"partial")
        statemgr.put(blob_path, b"complete")
        data, version = statemgr.get(blob_path)
        assert (data, version) == (b"complete", 1)

    def test_localfs_overwrite_persists_version(self, tmp_path):
        root = tmp_path / "state"
        first = LocalFileSystemStateManager(root)
        first.put(PATHS.checkpoints_latest, b"1")
        first.put(PATHS.checkpoints_latest, b"2")
        second = LocalFileSystemStateManager(root)
        assert second.get(PATHS.checkpoints_latest) == (b"2", 1)


class TestWatchReRegistration:
    def test_watch_survives_prune_cycle(self, statemgr):
        """A watcher on a pruned checkpoint node must re-register to see
        the node's next life (ZooKeeper one-shot semantics)."""
        commit = PATHS.checkpoint_commit(1)
        statemgr.put(commit, b"meta")
        events = []
        statemgr.watch(commit, events.append)
        statemgr.delete(PATHS.checkpoint(1), recursive=True)
        assert [e.type for e in events] == [WatchEventType.DELETED]
        # The fired watch is gone: a re-create is silent...
        statemgr.put(commit, b"meta-2")
        assert len(events) == 1
        # ...until the watcher re-registers.
        statemgr.watch(commit, events.append)
        statemgr.set(commit, b"meta-3")
        assert [e.type for e in events] == [WatchEventType.DELETED,
                                            WatchEventType.CHANGED]

    def test_recursive_delete_fires_descendant_watches(self, statemgr):
        """Pruning ckpt-N (recursive) notifies watchers of its blobs."""
        blob = PATHS.checkpoint_state(1, "count", 0)
        statemgr.put(PATHS.checkpoint_commit(1), b"meta")
        statemgr.put(blob, b"state")
        events = []
        statemgr.watch(blob, events.append)
        statemgr.delete(PATHS.checkpoint(1), recursive=True)
        assert [e.type for e in events] == [WatchEventType.DELETED]

    def test_child_watch_sees_new_checkpoint(self, statemgr):
        statemgr.put(PATHS.checkpoints_epoch, b"0")  # materialize the root
        events = []
        statemgr.watch_children(PATHS.checkpoints, events.append)
        statemgr.put(f"{PATHS.checkpoints}/ckpt-1", b"")
        assert len(events) == 1


class TestEphemeralsNextToSnapshots:
    def test_session_expiry_spares_snapshot_state(self, statemgr):
        """TM death drops its ephemeral location but never checkpoints."""
        statemgr.put(PATHS.checkpoint_commit(4), b"meta")
        statemgr.put(PATHS.checkpoints_latest, b"4")
        session = statemgr.session()
        session.create_ephemeral(PATHS.tmaster_location, b"host:1")
        session.expire()
        assert not statemgr.exists(PATHS.tmaster_location)
        assert statemgr.get_data(PATHS.checkpoints_latest) == b"4"
        assert statemgr.exists(PATHS.checkpoint_commit(4))

    def test_localfs_restart_drops_ephemeral_keeps_snapshots(self,
                                                             tmp_path):
        root = tmp_path / "state"
        first = LocalFileSystemStateManager(root)
        first.put(PATHS.checkpoint_state(2, "word", 1), b"offset-blob")
        first.put(PATHS.checkpoint_commit(2), b"meta")
        session = first.session()
        session.create_ephemeral(PATHS.tmaster_location, b"host:1")

        # Process death: no clean close; a fresh manager re-reads disk.
        second = LocalFileSystemStateManager(root)
        assert not second.exists(PATHS.tmaster_location)
        assert second.get_data(
            PATHS.checkpoint_state(2, "word", 1)) == b"offset-blob"
        assert second.children(PATHS.checkpoint(2)) == ["committed",
                                                        "state"]

    def test_new_session_can_reclaim_ephemeral_path(self, statemgr):
        """A relaunched TM re-registers at the same location node."""
        first = statemgr.session()
        first.create_ephemeral(PATHS.tmaster_location, b"host:1")
        first.expire()
        second = statemgr.session()
        second.create_ephemeral(PATHS.tmaster_location, b"host:2")
        assert statemgr.get_data(PATHS.tmaster_location) == b"host:2"
