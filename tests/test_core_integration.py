"""End-to-end integration tests of the Heron runtime on the simulator."""

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.packing.ffd import FirstFitDecreasingPacking
from repro.statemgr.paths import TopologyPaths
from repro.workloads.wordcount import wordcount_topology


def small_config(**overrides):
    cfg = Config()
    cfg.set(Keys.BATCH_SIZE, 50)
    cfg.set(Keys.CACHE_DRAIN_FREQUENCY_MS, 5.0)
    for key, value in overrides.items():
        cfg.set(getattr(Keys, key.upper()), value)
    return cfg


def submit_wordcount(cluster, parallelism=2, corpus_size=1000, **overrides):
    topology = wordcount_topology(parallelism, corpus_size=corpus_size,
                                  config=small_config(**overrides))
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    return handle


class TestSubmitAndRun:
    def test_tuples_flow_end_to_end(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster)
        cluster.run_for(1.0)
        totals = handle.totals()
        assert totals["emitted"] > 0
        assert totals["executed"] > 0

    def test_words_actually_counted(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, corpus_size=50)
        cluster.run_for(1.0)
        counts = {}
        for key, inst in handle._runtime.instances.items():
            if key[0] == "count":
                counts.update(inst.user.counts)
        assert sum(counts.values()) == handle.totals()["executed"]
        assert all(word.startswith("w") for word in counts)

    def test_fields_grouping_consistency(self):
        """Each word lands on exactly one bolt task."""
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, parallelism=3, corpus_size=100)
        cluster.run_for(1.0)
        seen = {}
        for key, inst in handle._runtime.instances.items():
            if key[0] != "count":
                continue
            for word in inst.user.counts:
                assert word not in seen, \
                    f"{word} counted by tasks {seen[word]} and {key[1]}"
                seen[word] = key[1]
        assert len(seen) > 10

    def test_statemgr_metadata_written(self):
        cluster = HeronCluster.local()
        submit_wordcount(cluster)
        paths = TopologyPaths("wordcount")
        assert cluster.statemgr.exists(paths.topology)
        assert cluster.statemgr.exists(paths.packing_plan)
        assert cluster.statemgr.exists(paths.tmaster_location)
        assert cluster.statemgr.get_data(paths.execution_state) == b"RUNNING"

    def test_duplicate_submission_rejected(self):
        cluster = HeronCluster.local()
        submit_wordcount(cluster)
        with pytest.raises(Exception, match="already running"):
            cluster.submit_topology(wordcount_topology(2))

    def test_throughput_is_deterministic(self):
        def run():
            cluster = HeronCluster.local()
            handle = submit_wordcount(cluster)
            cluster.run_for(1.0)
            return handle.totals()

        assert run() == run()


class TestAcking:
    def test_counted_acks_flow(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, acking_enabled=True,
                                  ack_tracking="counted",
                                  max_spout_pending=500)
        cluster.run_for(1.0)
        totals = handle.totals()
        assert totals["acked"] > 0
        assert totals["failed"] == 0
        latency = handle.latency_stats()
        assert latency.count > 0
        assert latency.mean > 0

    def test_exact_acks_flow(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, acking_enabled=True,
                                  ack_tracking="exact",
                                  max_spout_pending=200)
        cluster.run_for(1.0)
        totals = handle.totals()
        assert totals["acked"] > 0
        assert totals["failed"] == 0

    def test_exact_and_counted_agree_on_flow(self):
        results = {}
        for mode in ("exact", "counted"):
            cluster = HeronCluster.local()
            handle = submit_wordcount(cluster, acking_enabled=True,
                                      ack_tracking=mode,
                                      max_spout_pending=300)
            cluster.run_for(1.0)
            results[mode] = handle.totals()
        # Same order of magnitude of acked tuples (same closed loop).
        ratio = results["exact"]["acked"] / results["counted"]["acked"]
        assert 0.3 < ratio < 3.0

    def test_max_spout_pending_caps_inflight(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, acking_enabled=True,
                                  max_spout_pending=100,
                                  ack_tracking="counted")
        cluster.run_for(1.0)
        for key, inst in handle._runtime.instances.items():
            if key[0] == "word":
                assert inst.pending <= 100

    def test_spout_ack_callbacks_invoked(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, acking_enabled=True,
                                  ack_tracking="exact",
                                  max_spout_pending=100)
        cluster.run_for(1.0)
        spouts = [inst for key, inst in handle._runtime.instances.items()
                  if key[0] == "word"]
        assert any(s.user.acks_seen > 0 for s in spouts)


class TestBackpressure:
    def test_no_ack_run_stays_bounded(self):
        """Without acks, backpressure must keep queues bounded."""
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, acking_enabled=False)
        cluster.run_for(2.0)
        for inst in handle._runtime.instances.values():
            assert inst.inbox_len < 2000
        for sm in handle._runtime.sms.values():
            assert sm.inbox_len < 2000


class TestLifecycle:
    def test_kill_releases_everything(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster)
        cluster.run_for(0.2)
        handle.kill()
        assert cluster.cluster.provisioned_cores() == 0
        assert not cluster.statemgr.exists(TopologyPaths("wordcount").base)
        cluster.run_for(0.5)  # no stray events blow up

    def test_deactivate_stops_emission(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster)
        cluster.run_for(0.5)
        handle.deactivate()
        cluster.run_for(0.2)  # drain in-flight
        before = handle.totals()["emitted"]
        cluster.run_for(0.5)
        assert handle.totals()["emitted"] == before

    def test_activate_resumes_emission(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster)
        cluster.run_for(0.5)
        handle.deactivate()
        cluster.run_for(0.3)
        before = handle.totals()["emitted"]
        handle.activate()
        cluster.run_for(0.5)
        assert handle.totals()["emitted"] > before

    def test_two_topologies_coexist(self):
        cluster = HeronCluster.local()
        first = submit_wordcount(cluster)
        second_topology = wordcount_topology(2, corpus_size=1000,
                                             config=small_config(),
                                             name="wordcount2")
        second = cluster.submit_topology(second_topology)
        second.wait_until_running()
        cluster.run_for(0.5)
        assert first.totals()["executed"] > 0
        assert second.totals()["executed"] > 0

    def test_different_resource_managers_per_topology(self):
        """Modularity: two topologies, two packing policies, one cluster."""
        cluster = HeronCluster.local()
        rr_handle = submit_wordcount(cluster)
        ffd_topology = wordcount_topology(4, corpus_size=1000,
                                          config=small_config(),
                                          name="wordcount-ffd")
        ffd_handle = cluster.submit_topology(
            ffd_topology, resource_manager=FirstFitDecreasingPacking())
        ffd_handle.wait_until_running()
        cluster.run_for(0.3)
        assert ffd_handle.totals()["executed"] > 0
        assert ffd_handle.packing_plan.container_count <= \
            rr_handle.packing_plan.container_count * 4


class TestScaling:
    def test_scale_up_bolts(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, parallelism=2)
        cluster.run_for(0.5)
        handle.scale({"count": 4})
        cluster.run_for(1.0)
        live_bolts = [k for k in handle._runtime.instances if k[0] == "count"]
        assert len(live_bolts) == 4
        # New bolts receive work too.
        new_tasks = [handle._runtime.instances[("count", t)]
                     for t in (2, 3)]
        assert all(b.executed_count > 0 for b in new_tasks)

    def test_scale_down_bolts(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, parallelism=3)
        cluster.run_for(0.5)
        handle.scale({"count": 1})
        cluster.run_for(0.5)
        live_bolts = [k for k in handle._runtime.instances if k[0] == "count"]
        assert live_bolts == [("count", 0)]
        assert handle.totals()["executed"] > 0

    def test_counters_monotonic_across_scaling(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, parallelism=2)
        cluster.run_for(0.5)
        before = handle.totals()["executed"]
        handle.scale({"count": 1})
        cluster.run_for(0.1)
        assert handle.totals()["executed"] >= before

    def test_statemgr_plan_updated(self):
        cluster = HeronCluster.local()
        handle = submit_wordcount(cluster, parallelism=2)
        cluster.run_for(0.2)
        handle.scale({"count": 5})
        from repro.packing.plan import PackingPlan
        blob = cluster.statemgr.get_data(
            TopologyPaths("wordcount").packing_plan)
        stored = PackingPlan.from_json(blob)
        assert stored.component_parallelism()["count"] == 5


class TestFailureRecovery:
    def test_container_failure_recovers_on_yarn(self):
        cluster = HeronCluster.on_yarn(machines=4)
        handle = submit_wordcount(cluster, parallelism=4)
        cluster.run_for(0.5)
        victim_cid = handle.packing_plan.containers[0].id
        victim = next(
            jc.container for jc in cluster.framework.job_containers(
                "wordcount")
            if jc.role == f"container-{victim_cid}")
        cluster.cluster.fail_container(victim)
        cluster.run_for(3.0)
        # The stateful scheduler restored the container; traffic flows.
        before = handle.totals()["executed"]
        cluster.run_for(1.0)
        assert handle.totals()["executed"] > before
        assert victim_cid in handle._runtime.sms

    def test_container_failure_recovers_on_aurora(self):
        cluster = HeronCluster.on_aurora(machines=4)
        handle = submit_wordcount(cluster, parallelism=4)
        cluster.run_for(0.5)
        victim_cid = handle.packing_plan.containers[-1].id
        victim = next(
            jc.container for jc in cluster.framework.job_containers(
                "wordcount")
            if jc.role == f"container-{victim_cid}")
        cluster.cluster.fail_container(victim)
        cluster.run_for(3.0)
        before = handle.totals()["executed"]
        cluster.run_for(1.0)
        assert handle.totals()["executed"] > before

    def test_tmaster_failover(self):
        """TM dies -> ephemeral node vanishes -> SMs reconnect to new TM."""
        cluster = HeronCluster.on_yarn(machines=4)
        handle = submit_wordcount(cluster, parallelism=2)
        cluster.run_for(0.5)
        paths = TopologyPaths("wordcount")
        tm_container = next(
            jc.container for jc in cluster.framework.job_containers(
                "wordcount") if jc.role == "tmaster")
        cluster.cluster.fail_container(tm_container)
        # Ephemeral location node is gone the moment the session dies.
        assert not cluster.statemgr.exists(paths.tmaster_location)
        cluster.run_for(3.0)
        assert cluster.statemgr.exists(paths.tmaster_location)
        new_tm = handle._runtime.tmaster
        assert new_tm is not None and new_tm.alive
        # SMs re-registered with the new TM and the plan was rebroadcast.
        assert new_tm.plan_broadcasts >= 1
        before = handle.totals()["executed"]
        cluster.run_for(1.0)
        assert handle.totals()["executed"] > before
