"""Tests for the physical plan and the HeronCluster facade edges."""

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.common.errors import SchedulerError, TopologyError
from repro.core.heron import HeronCluster
from repro.core.pplan import PhysicalPlan
from repro.packing.round_robin import RoundRobinPacking
from repro.workloads.wordcount import wordcount_topology


def make_pplan(parallelism=3, slots=4):
    topology = wordcount_topology(parallelism)
    manager = RoundRobinPacking()
    manager.initialize(
        Config().set(Keys.INSTANCES_PER_CONTAINER, slots), topology)
    return PhysicalPlan(topology, manager.pack())


class TestPhysicalPlan:
    def test_container_of_covers_every_task(self):
        pplan = make_pplan(parallelism=3)
        assert set(pplan.container_of) == {
            ("word", 0), ("word", 1), ("word", 2),
            ("count", 0), ("count", 1), ("count", 2)}

    def test_instances_by_container_partition(self):
        pplan = make_pplan(parallelism=4)
        all_keys = [key for keys in pplan.instances_by_container.values()
                    for key in keys]
        assert sorted(all_keys) == sorted(pplan.container_of)

    def test_task_ids_ordered(self):
        pplan = make_pplan(parallelism=5)
        assert pplan.task_ids["word"] == [0, 1, 2, 3, 4]

    def test_spout_keys(self):
        pplan = make_pplan(parallelism=2)
        assert pplan.spout_keys() == [("word", 0), ("word", 1)]

    def test_routing_tables(self):
        pplan = make_pplan(parallelism=2)
        tables = pplan.build_routing("word")
        assert "default" in tables
        dest, grouping = tables["default"][0]
        assert dest == "count"
        # Fresh grouping instances per call (router-local state).
        again = pplan.build_routing("word")
        assert again["default"][0][1] is not grouping

    def test_sink_has_no_routing(self):
        pplan = make_pplan(parallelism=2)
        assert pplan.build_routing("count") == {}

    def test_mismatched_plan_rejected(self):
        topology = wordcount_topology(3)
        other = wordcount_topology(5)
        manager = RoundRobinPacking()
        manager.initialize(Config(), other)
        with pytest.raises(TopologyError, match="does not match"):
            PhysicalPlan(topology, manager.pack())

    def test_describe(self):
        text = make_pplan(parallelism=2).describe()
        assert "container 1" in text
        assert "word[0]" in text


class TestFacadeErrors:
    def test_unknown_topology_operations(self):
        cluster = HeronCluster.local()
        with pytest.raises(TopologyError):
            cluster.kill_topology("ghost")
        with pytest.raises(TopologyError):
            cluster.restart_topology("ghost")
        with pytest.raises(TopologyError):
            cluster.update_topology("ghost", {"x": 1})
        with pytest.raises(TopologyError):
            cluster.activate("ghost")

    def test_scale_unknown_component_rejected(self):
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(wordcount_topology(2))
        handle.wait_until_running()
        with pytest.raises(Exception):
            handle.scale({"ghost": 3})

    def test_wait_until_running_times_out_without_events(self):
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(wordcount_topology(2))
        # Sabotage: kill the TM before the plan broadcast can happen.
        handle._runtime.tmaster.kill()
        with pytest.raises(SchedulerError, match="did not reach running"):
            handle.wait_until_running(timeout=0.5)

    def test_resubmission_after_kill_is_allowed(self):
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(wordcount_topology(2))
        handle.wait_until_running()
        handle.kill()
        again = cluster.submit_topology(wordcount_topology(2))
        again.wait_until_running()
        cluster.run_for(0.2)
        assert again.totals()["executed"] > 0

    def test_activate_without_tm_rejected(self):
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(wordcount_topology(2))
        handle._runtime.tmaster.kill()
        with pytest.raises(SchedulerError, match="no live TM"):
            handle.activate()

    def test_provisioned_cores_accounts_tm_container(self):
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(wordcount_topology(2))
        handle.wait_until_running()
        plan_cpu = handle.packing_plan.total_resource.cpu
        assert handle.provisioned_cores() > plan_cpu  # + TM container
