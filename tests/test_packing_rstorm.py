"""Tests for R-Storm packing and repack placement stability."""

import pytest

from repro.api.component import Bolt, Spout
from repro.api.topology import TopologyBuilder
from repro.common.config import Config
from repro.common.errors import PackingError
from repro.common.resources import Resource
from repro.common.units import GB
from repro.packing.base import PackingConfigKeys
from repro.packing.ffd import FirstFitDecreasingPacking
from repro.packing.round_robin import RoundRobinPacking
from repro.packing.rstorm import RStormPacking
from repro.simulation.cluster import Cluster

MACHINE = Resource(cpu=8, ram=32 * GB, disk=500 * GB)


class _Spout(Spout):
    outputs = {"default": ["key"]}

    def next_tuple(self, collector):
        collector.emit(["x"])


class _Bolt(Bolt):
    outputs = {"default": ["key"]}

    def execute(self, tup, collector):
        pass


def pipeline_topology(shards=2, parallelism=2):
    """Disjoint spout->bolt pipelines: clear communication clusters."""
    builder = TopologyBuilder("pipelines")
    for shard in range(shards):
        builder.set_spout(f"src{shard}", _Spout(), parallelism=parallelism,
                          resource=Resource(cpu=1.0, ram=1 * GB))
        builder.set_bolt(f"dst{shard}", _Bolt(), parallelism=parallelism,
                         resource=Resource(cpu=1.0, ram=1 * GB)) \
            .shuffle_grouping(f"src{shard}")
    return builder.build()


def rstorm(topology, cluster=None, bin_cpu=4.0):
    config = Config().set(PackingConfigKeys.RSTORM_MAX_CONTAINER_CPU,
                          bin_cpu)
    policy = RStormPacking()
    policy.initialize(config, topology)
    if cluster is not None:
        policy.bind_cluster(cluster)
    return policy


class TestPack:
    def test_communicating_pairs_share_containers(self):
        plan = rstorm(pipeline_topology(shards=2)).pack()
        by_container = {c.id: {i.component for i in c.instances}
                        for c in plan.containers}
        # Each 4-cpu bin holds exactly one shard's src+dst pair.
        assert len(by_container) == 2
        for components in by_container.values():
            shard_ids = {name[-1] for name in components}
            assert len(shard_ids) == 1

    def test_bin_capacity_respected(self):
        plan = rstorm(pipeline_topology(shards=3), bin_cpu=2.0).pack()
        for container in plan.containers:
            assert container.instance_resource.cpu <= 2.0

    def test_oversized_instance_rejected(self):
        builder = TopologyBuilder("big")
        builder.set_spout("src", _Spout(), parallelism=1,
                          resource=Resource(cpu=16.0, ram=1 * GB))
        with pytest.raises(PackingError, match="bin capacity"):
            rstorm(builder.build()).pack()

    def test_hints_emitted_when_cluster_bound(self):
        cluster = Cluster.racked(2, 2, MACHINE)
        plan = rstorm(pipeline_topology(shards=2), cluster).pack()
        for container in plan.containers:
            assert container.preferred_machine is not None
            assert container.preferred_rack == cluster.rack_of(
                container.preferred_machine)

    def test_no_hints_without_cluster(self):
        plan = rstorm(pipeline_topology(shards=2)).pack()
        for container in plan.containers:
            assert container.preferred_machine is None
            assert container.preferred_rack is None

    def test_shards_spread_across_machines(self):
        cluster = Cluster.racked(2, 2, MACHINE)
        plan = rstorm(pipeline_topology(shards=4), cluster).pack()
        machines = [c.preferred_machine for c in plan.containers]
        assert len(set(machines)) == len(machines)  # one shard per machine

    def test_pack_is_deterministic(self):
        topology = pipeline_topology(shards=3)
        cluster = Cluster.racked(3, 2, MACHINE)
        a = rstorm(topology, cluster).pack()
        b = rstorm(topology, Cluster.racked(3, 2, MACHINE)).pack()
        assert a.to_json() == b.to_json()

    def test_plan_roundtrips_through_json(self):
        from repro.packing.plan import PackingPlan
        cluster = Cluster.racked(2, 2, MACHINE)
        plan = rstorm(pipeline_topology(), cluster).pack()
        assert PackingPlan.from_json(plan.to_json()).to_json() == \
            plan.to_json()


class TestRepackStability:
    """Unchanged instances never move: same container, same machine."""

    def _stable_containers(self, old_plan, new_plan):
        old = {c.id: c for c in old_plan.containers}
        for new_container in new_plan.containers:
            old_container = old.get(new_container.id)
            if old_container is None:
                continue
            yield old_container, new_container

    @pytest.mark.parametrize("make_policy", [
        RoundRobinPacking, FirstFitDecreasingPacking, RStormPacking])
    def test_unchanged_instances_keep_their_container(self, make_policy):
        topology = pipeline_topology(shards=2)
        policy = make_policy()
        policy.initialize(Config(), topology)
        old_plan = policy.pack()
        new_plan = policy.repack(old_plan, {"dst1": 4})
        old_tasks = {(i.component, i.task_id): c.id
                     for c in old_plan.containers for i in c.instances}
        new_tasks = {(i.component, i.task_id): c.id
                     for c in new_plan.containers for i in c.instances}
        for task, old_cid in old_tasks.items():
            assert new_tasks[task] == old_cid

    def test_rstorm_repack_keeps_machines(self):
        cluster = Cluster.racked(2, 2, MACHINE)
        policy = rstorm(pipeline_topology(shards=2), cluster)
        old_plan = policy.pack()
        new_plan = policy.repack(old_plan, {"dst0": 3})
        for old_container, new_container in \
                self._stable_containers(old_plan, new_plan):
            assert new_container.preferred_machine == \
                old_container.preferred_machine
            assert new_container.preferred_rack == \
                old_container.preferred_rack

    def test_repack_addition_joins_partner_container(self):
        cluster = Cluster.racked(2, 2, MACHINE)
        policy = rstorm(pipeline_topology(shards=1), cluster, bin_cpu=6.0)
        old_plan = policy.pack()
        assert old_plan.container_count == 1  # 4 cpu fits one 6-cpu bin
        new_plan = policy.repack(old_plan, {"dst0": 3})
        # The new dst0 task has room next to its src0 partners and
        # co-locates with them instead of opening a fresh container.
        assert new_plan.container_count == 1

    def test_repack_overflow_opens_new_container(self):
        cluster = Cluster.racked(2, 2, MACHINE)
        policy = rstorm(pipeline_topology(shards=1), cluster, bin_cpu=4.0)
        old_plan = policy.pack()
        new_plan = policy.repack(old_plan, {"dst0": 3})
        assert new_plan.container_count == 2
        added = [c for c in new_plan.containers
                 if any((i.component, i.task_id) == ("dst0", 2)
                        for i in c.instances)]
        assert len(added) == 1
        assert added[0].preferred_machine is not None

    def test_scale_down_removes_highest_task_ids(self):
        policy = rstorm(pipeline_topology(shards=2, parallelism=3))
        old_plan = policy.pack()
        new_plan = policy.repack(old_plan, {"dst0": 1})
        tasks = [(i.component, i.task_id) for c in new_plan.containers
                 for i in c.instances]
        assert ("dst0", 0) in tasks
        assert ("dst0", 1) not in tasks and ("dst0", 2) not in tasks

    def test_repack_is_deterministic(self):
        cluster = Cluster.racked(2, 2, MACHINE)

        def run():
            policy = rstorm(pipeline_topology(shards=2), cluster)
            plan = policy.pack()
            return policy.repack(plan, {"dst0": 4}).to_json()

        assert run() == run()


class TestCheckChanges:
    @pytest.mark.parametrize("make_policy", [
        RoundRobinPacking, FirstFitDecreasingPacking, RStormPacking])
    def test_unknown_component_rejected(self, make_policy):
        policy = make_policy()
        policy.initialize(Config(), pipeline_topology())
        plan = policy.pack()
        with pytest.raises(PackingError, match="unknown component"):
            policy.repack(plan, {"nope": 2})

    @pytest.mark.parametrize("make_policy", [
        RoundRobinPacking, FirstFitDecreasingPacking, RStormPacking])
    def test_nonpositive_parallelism_rejected(self, make_policy):
        policy = make_policy()
        policy.initialize(Config(), pipeline_topology())
        plan = policy.pack()
        with pytest.raises(PackingError, match="positive"):
            policy.repack(plan, {"dst0": 0})


class TestEndToEndPlacement:
    def test_scaling_leaves_unchanged_containers_on_their_machines(self):
        from repro.core.heron import HeronCluster

        cluster = Cluster.racked(2, 2, MACHINE)
        heron = HeronCluster.on_yarn(cluster=cluster)
        # The bin size must ride on the topology config: submit_topology
        # re-initializes the manager from it.
        config = Config().set(PackingConfigKeys.RSTORM_MAX_CONTAINER_CPU,
                              4.0)
        builder = TopologyBuilder("pipelines")
        for shard in range(2):
            builder.set_spout(f"src{shard}", _Spout(), parallelism=2,
                              resource=Resource(cpu=1.0, ram=1 * GB))
            builder.set_bolt(f"dst{shard}", _Bolt(), parallelism=2,
                             resource=Resource(cpu=1.0, ram=1 * GB)) \
                .shuffle_grouping(f"src{shard}")
        topology = builder.build(config)
        handle = heron.submit_topology(topology,
                                       resource_manager=RStormPacking())
        handle.wait_until_running()
        before = {c.id: c.machine.id
                  for c in cluster.live_containers(topology.name)}
        handle.scale({"dst0": 3})
        heron.run_for(0.5)
        after = {c.id: c.machine.id
                 for c in cluster.live_containers(topology.name)}
        # Container ids are per-cluster-allocation here, so compare via
        # the surviving allocations: every container that existed before
        # and still exists is on the same machine.
        for cid, machine_id in before.items():
            if cid in after:
                assert after[cid] == machine_id
        handle.kill()
