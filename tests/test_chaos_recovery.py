"""Chaos testing: repeated failures under both recovery models.

The engine must survive arbitrary container-failure sequences: traffic
keeps flowing after recovery, no stale actors keep routing, resources
never leak.
"""

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.simulation.rng import RngStream
from repro.workloads.wordcount import wordcount_topology


def submit(cluster, parallelism=4):
    cfg = Config().set(Keys.BATCH_SIZE, 100).set(Keys.SAMPLE_CAP, 16)
    topology = wordcount_topology(parallelism, corpus_size=500, config=cfg)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    cluster.run_for(0.5)
    return handle


def throughput_over(cluster, handle, seconds=1.0):
    before = handle.totals()["executed"]
    cluster.run_for(seconds)
    return (handle.totals()["executed"] - before) / seconds


@pytest.mark.parametrize("flavor", ["yarn", "aurora"])
class TestRepeatedFailures:
    def make(self, flavor):
        return (HeronCluster.on_yarn(machines=8) if flavor == "yarn"
                else HeronCluster.on_aurora(machines=8))

    def test_five_sequential_failures(self, flavor):
        cluster = self.make(flavor)
        handle = submit(cluster)
        rng = RngStream(42, "chaos")
        for round_number in range(5):
            containers = cluster.framework.job_containers("wordcount")
            victim = rng.choice([jc for jc in containers
                                 if jc.role != "tmaster"])
            cluster.cluster.fail_container(victim.container)
            cluster.run_for(3.0)  # recovery window
            rate = throughput_over(cluster, handle)
            assert rate > 0, f"no traffic after failure #{round_number}"
        # Full container set restored.
        roles = {jc.role for jc in
                 cluster.framework.job_containers("wordcount")}
        expected = {"tmaster"} | {
            f"container-{c.id}" for c in handle.packing_plan.containers}
        assert roles == expected

    def test_no_resource_leak_across_failures(self, flavor):
        cluster = self.make(flavor)
        handle = submit(cluster)
        provisioned = cluster.cluster.provisioned_cores()
        for _ in range(3):
            containers = cluster.framework.job_containers("wordcount")
            cluster.cluster.fail_container(containers[-1].container)
            cluster.run_for(3.0)
        assert cluster.cluster.provisioned_cores() == provisioned
        handle.kill()
        assert cluster.cluster.provisioned_cores() == 0

    def test_tm_and_worker_failure_together(self, flavor):
        cluster = self.make(flavor)
        handle = submit(cluster)
        containers = cluster.framework.job_containers("wordcount")
        tm = next(jc for jc in containers if jc.role == "tmaster")
        worker = next(jc for jc in containers if jc.role != "tmaster")
        cluster.cluster.fail_container(tm.container)
        cluster.cluster.fail_container(worker.container)
        cluster.run_for(5.0)
        assert throughput_over(cluster, handle) > 0
        tmaster = handle._runtime.tmaster
        assert tmaster is not None and tmaster.alive


class TestRecoveryCorrectness:
    def test_fields_grouping_consistent_after_recovery(self):
        """A relaunched bolt task must receive the same key partition."""
        cluster = HeronCluster.on_yarn(machines=8)
        handle = submit(cluster, parallelism=3)
        cluster.run_for(0.5)
        victim_plan = handle.packing_plan.containers[0]
        bolt_tasks_in_victim = [i.task_id for i in victim_plan.instances
                                if i.component == "count"]
        victim = next(jc.container for jc in
                      cluster.framework.job_containers("wordcount")
                      if jc.role == f"container-{victim_plan.id}")
        cluster.cluster.fail_container(victim)
        cluster.run_for(3.0)
        cluster.run_for(1.0)
        # Every word is still counted by exactly one live task.
        seen = {}
        for key, inst in handle._runtime.instances.items():
            if key[0] != "count":
                continue
            for word in inst.user.counts:
                assert word not in seen, f"{word} on two tasks"
                seen[word] = key[1]
        # The relaunched tasks participate again.
        for task in bolt_tasks_in_victim:
            assert handle._runtime.instances[("count", task)].alive

    def test_scaling_after_recovery(self):
        cluster = HeronCluster.on_yarn(machines=10)
        handle = submit(cluster, parallelism=2)
        victim = cluster.framework.job_containers("wordcount")[-1]
        cluster.cluster.fail_container(victim.container)
        cluster.run_for(3.0)
        handle.scale({"count": 4})
        cluster.run_for(1.0)
        live_bolts = [k for k in handle._runtime.instances
                      if k[0] == "count"]
        assert len(live_bolts) == 4
        assert throughput_over(cluster, handle) > 0
