"""Tests for the tie-race detector (repro.analysis.races + effects).

Three layers:

* the static effect analysis classifies real workload handlers the way
  the pruning logic depends on (commutative counting vs plain writes);
* the end-to-end detector flags the injected non-commuting fixture race
  with correct source locations, stays silent on its commuting twin,
  and the DPOR-lite explorer confirms the divergence;
* the causal trace is byte-identical across the heap and calendar
  kernels (the dual-kernel replay contract extends to tracing).
"""

from __future__ import annotations

import inspect

import pytest

from repro.analysis.effects import (EFFECT_COMMUTE, EFFECT_READ,
                                    EFFECT_WRITE, EffectIndex, conflicts,
                                    merge_footprints)
from repro.analysis.races import (RACE_RULES, CausalTracer, _suppressed,
                                  attach_tracer, explore, main, run_races)
from repro.simulation.events import Simulator
from repro.workloads.racy import LastWordBolt, MergeCountBolt
from repro.workloads.stateful_wordcount import StatefulWordSpout
from repro.workloads.wordcount import CountBolt


# -- static effect analysis --------------------------------------------------

def test_counting_classifies_commutative():
    index = EffectIndex()
    for method in ("execute", "execute_batch"):
        footprint = index.footprint(CountBolt, method)
        assert footprint is not None
        assert footprint["counts"].kind == EFFECT_COMMUTE


def test_last_word_classifies_order_sensitive_with_location():
    index = EffectIndex()
    footprint = index.footprint(LastWordBolt, "execute")
    assert footprint is not None
    assert footprint["last_word"].kind == EFFECT_WRITE
    assert footprint["seen"].kind == EFFECT_COMMUTE
    source, start = inspect.getsourcelines(LastWordBolt)
    effect = footprint["last_word"]
    assert effect.path.endswith("racy.py")
    flagged = source[effect.line - start]
    assert "self.last_word = " in flagged


def test_helper_fixpoint_folds_private_methods():
    # next_batch writes offset directly and reads fields only reachable
    # through self._word_at / self._paced_target helpers.
    index = EffectIndex()
    footprint = index.footprint(StatefulWordSpout, "next_batch")
    assert footprint is not None
    assert footprint["offset"].kind == EFFECT_WRITE
    assert footprint["_salt"].kind == EFFECT_READ   # via _word_at
    assert footprint["rate"].kind == EFFECT_READ    # via _paced_target


def test_conflicts_require_an_order_sensitive_side():
    index = EffectIndex()
    commuting = index.footprint(MergeCountBolt, "execute")
    racy = index.footprint(LastWordBolt, "execute")
    assert conflicts(commuting, commuting) == []
    clash = conflicts(racy, racy)
    assert [c.field for c in clash] == ["last_word"]
    # Unknown footprints prune rather than flag.
    assert conflicts(None, racy) == []


def test_merge_footprints_strongest_kind_wins():
    index = EffectIndex()
    read_side = index.footprint(StatefulWordSpout, "snapshot_state")
    write_side = index.footprint(StatefulWordSpout, "next_batch")
    merged = merge_footprints(read_side, write_side)
    assert merged["offset"].kind == EFFECT_WRITE


# -- attachment contract -----------------------------------------------------

def test_attach_requires_sanitize_and_fifo_for_exploration():
    plain = Simulator(sanitize=False)
    with pytest.raises(ValueError, match="sanitize"):
        attach_tracer(plain, CausalTracer())
    lifo = Simulator(sanitize=True, tie_order="lifo")
    with pytest.raises(ValueError, match="FIFO"):
        attach_tracer(lifo, CausalTracer(), classify=lambda fn, args: 0)
    fifo = Simulator(sanitize=True, tie_order="fifo")
    tracer = CausalTracer()
    attach_tracer(fifo, tracer)
    assert fifo.sanitizer is not None
    assert fifo.sanitizer.tracer is tracer


# -- end-to-end detection ----------------------------------------------------

def test_racy_fixture_is_flagged_with_source_locations():
    report = run_races("racy", fast=True)
    assert not report.clean
    finding = report.findings[0]
    assert finding.actor == "sink[0]"
    assert finding.conflict.field == "last_word"
    # Both sides resolve to the user handler and distinct channels.
    assert finding.a.handlers == ("execute",)
    assert {finding.a.channels[0][1], finding.b.channels[0][1]} == {0, 1}
    # The reported location is the order-sensitive assignment itself.
    source, start = inspect.getsourcelines(LastWordBolt)
    line = source[finding.conflict.a.line - start]
    assert "self.last_word = " in line
    assert "R001" in finding.violation().format()


def test_commuting_twin_is_pruned_clean():
    report = run_races("commuting", fast=True)
    assert report.clean
    assert report.stats["unordered_pairs"] > 0
    assert report.stats["commuting_pruned"] \
        == report.stats["unordered_pairs"]


def test_explorer_confirms_divergence_on_racy_only():
    racy = run_races("racy", fast=True)
    result = explore("racy", racy.findings[0], fast=True,
                     baseline=racy.digest)
    assert result.confirmed
    assert racy.findings[0].confirmed is True
    assert len({result.baseline, result.demoted_a,
                result.demoted_b}) >= 2


def test_wordcount_trace_is_race_clean_on_both_kernels():
    reports = {kernel: run_races("wordcount", kernel=kernel, fast=True)
               for kernel in ("calendar", "heap")}
    for report in reports.values():
        assert report.clean
    # Byte-identical replay extends to the causal trace and the final
    # observable state.
    assert reports["calendar"].trace_digest \
        == reports["heap"].trace_digest
    assert reports["calendar"].digest == reports["heap"].digest


def test_racy_findings_agree_across_kernels():
    signatures = {}
    for kernel in ("calendar", "heap"):
        report = run_races("racy", kernel=kernel, fast=True)
        signatures[kernel] = [f.signature for f in report.findings]
    assert signatures["calendar"] == signatures["heap"]


def test_tracing_does_not_perturb_the_schedule():
    # The same scenario without a tracer produces the same final state
    # digest: observation must be side-effect free.
    from repro.analysis.races import SCENARIOS, _run_once
    from repro.analysis.sanitize import digest_state

    scenario = SCENARIOS["racy"]
    _tracer, traced = _run_once(scenario, kernel=None,
                                duration=scenario.fast_duration,
                                fast=True, classify=None)
    sim = Simulator(sanitize=True, tie_order="fifo")
    observe = scenario.build(sim, True)
    sim.run_until(scenario.fast_duration)
    assert digest_state(observe()) == traced


# -- pragma suppression ------------------------------------------------------

def test_r001_pragma_suppresses_finding(tmp_path):
    report = run_races("racy", fast=True)
    finding = report.findings[0]
    assert not _suppressed(finding)
    # Re-point the conflicting access at a pragma-carrying copy.
    import dataclasses
    shadow = tmp_path / "shadow.py"
    lines = ["# filler\n"] * (finding.conflict.a.line - 1)
    shadow.write_text("".join(lines)
                      + "x = 1  # lint: allow[R001] fixture\n")
    effect = dataclasses.replace(finding.conflict.a, path=str(shadow))
    suppressed = dataclasses.replace(
        finding, conflict=dataclasses.replace(finding.conflict, a=effect))
    assert _suppressed(suppressed)


# -- CLI ---------------------------------------------------------------------

def test_main_exit_codes_and_parity_line(capsys):
    assert main(["commuting", "--fast"]) == 0
    assert main(["racy", "--fast"]) == 1
    assert main(["wordcount", "--fast", "--kernel", "both"]) == 0
    out = capsys.readouterr().out
    assert "cross-kernel parity" in out
    assert "R001" in out


def test_rule_table_documents_r001():
    assert "R001" in RACE_RULES
    assert "tie" in RACE_RULES["R001"].title
