"""Storm baseline internals: transfer merging, contention effects,
flush batching."""

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.baselines.storm.cluster import StormCluster
from repro.baselines.storm.config_keys import StormConfigKeys as StormKeys
from repro.baselines.storm.messages import merge_batches
from repro.common.config import Config
from repro.common.resources import Resource
from repro.common.units import GB
from repro.core.messages import DataBatch
from repro.workloads.wordcount import wordcount_topology


def batch(dest, source="word", stream="default", origin=("word", 0),
          values=None, count=None, ids=None):
    values = values if values is not None else [["a"]]
    count = count if count is not None else len(values)
    return DataBatch(dest=dest, source_component=source, stream=stream,
                     values=values, count=count, origin=origin,
                     emit_time_sum=float(count),
                     tuple_ids=ids or [], anchors=[[] for _ in (ids or [])])


class TestMergeBatches:
    def test_merges_same_destination(self):
        merged = merge_batches([
            batch(("count", 0), values=[["a"]]),
            batch(("count", 0), values=[["b"]]),
        ])
        assert len(merged) == 1
        assert merged[0].count == 2
        assert merged[0].values == [["a"], ["b"]]
        assert merged[0].emit_time_sum == 2.0

    def test_does_not_merge_across_destinations(self):
        merged = merge_batches([batch(("count", 0)), batch(("count", 1))])
        assert len(merged) == 2

    def test_does_not_merge_across_origins(self):
        merged = merge_batches([
            batch(("count", 0), origin=("word", 0)),
            batch(("count", 0), origin=("word", 1)),
        ])
        assert len(merged) == 2

    def test_preserves_ids_and_anchors(self):
        merged = merge_batches([
            batch(("count", 0), values=[["a"]], ids=[7]),
            batch(("count", 0), values=[["b"]], ids=[9]),
        ])
        assert merged[0].tuple_ids == [7, 9]
        assert len(merged[0].anchors) == 2

    def test_empty(self):
        assert merge_batches([]) == []


class TestContentionEffects:
    def test_crowded_worker_is_slower(self):
        """Same total executors: 1 crowded worker vs 4 roomy ones."""
        def throughput(workers):
            cluster = StormCluster(
                supervisors=4,
                supervisor_resource=Resource(cpu=8, ram=28 * GB,
                                             disk=500 * GB))
            cfg = Config()
            cfg.set(Keys.BATCH_SIZE, 200)
            cfg.set(Keys.SAMPLE_CAP, 16)
            cfg.set(StormKeys.NUM_WORKERS, workers)
            handle = cluster.submit_topology(
                wordcount_topology(8, corpus_size=500, config=cfg))
            cluster.run_for(1.5)
            totals = handle.totals()
            return totals["executed"], handle.contention

        crowded_rate, crowded_contention = throughput(workers=1)
        spread_rate, spread_contention = throughput(workers=4)
        assert crowded_contention > spread_contention
        assert spread_rate > crowded_rate * 1.2

    def test_contention_factor_formula(self):
        cluster = StormCluster(
            supervisors=1,
            supervisor_resource=Resource(cpu=8, ram=28 * GB, disk=500 * GB))
        cfg = Config().set(StormKeys.NUM_WORKERS, 1)
        handle = cluster.submit_topology(
            wordcount_topology(10, corpus_size=100, config=cfg))
        # 20 executors + 2 threads on 8 cores.
        expected = 1.0 + cluster.costs.storm_contention_per_excess_thread \
            * (20 + 2 - 8)
        assert handle.contention == pytest.approx(expected)


class TestTransferBatching:
    def test_transfer_forwards_across_workers(self):
        cluster = StormCluster(supervisors=3)
        cfg = Config()
        cfg.set(Keys.BATCH_SIZE, 100)
        cfg.set(StormKeys.NUM_WORKERS, 3)
        cfg.set(StormKeys.TRANSFER_FLUSH_MS, 2.0)
        handle = cluster.submit_topology(
            wordcount_topology(3, corpus_size=500, config=cfg))
        cluster.run_for(1.0)
        forwarded = sum(w.transfer.batches_forwarded
                        for w in handle.workers)
        assert forwarded > 0
        assert handle.totals()["executed"] > 0

    def test_slower_flush_means_fewer_bigger_transfers(self):
        def transfers(flush_ms):
            cluster = StormCluster(supervisors=2)
            cfg = Config()
            cfg.set(Keys.BATCH_SIZE, 100)
            cfg.set(Keys.SAMPLE_CAP, 8)
            cfg.set(StormKeys.TRANSFER_FLUSH_MS, flush_ms)
            handle = cluster.submit_topology(
                wordcount_topology(4, corpus_size=500, config=cfg))
            cluster.run_for(1.0)
            forwarded = sum(w.transfer.batches_forwarded
                            for w in handle.workers)
            return forwarded, handle.totals()["executed"]

        fast_fwd, fast_tuples = transfers(1.0)
        slow_fwd, slow_tuples = transfers(20.0)
        # Similar tuple volume, far fewer forwarded buffers.
        assert slow_fwd < fast_fwd
        assert slow_tuples > 0.3 * fast_tuples
