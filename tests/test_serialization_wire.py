"""Tests for the varint/TLV wire format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.serialization.wire import (WireReader, WireType, WireWriter,
                                      zigzag_decode, zigzag_encode)


class TestZigzag:
    @pytest.mark.parametrize("value,encoded",
                             [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)])
    def test_known_values(self, value, encoded):
        assert zigzag_encode(value) == encoded
        assert zigzag_decode(encoded) == value

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_encoding_is_nonnegative(self, value):
        assert zigzag_encode(value) >= 0


class TestVarint:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip(self, value):
        writer = WireWriter()
        writer.write_varint(value)
        assert WireReader(writer.getvalue()).read_varint() == value

    def test_small_values_are_one_byte(self):
        writer = WireWriter()
        writer.write_varint(127)
        assert len(writer.getvalue()) == 1

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            WireWriter().write_varint(-1)

    def test_truncated_varint_rejected(self):
        with pytest.raises(SerializationError):
            WireReader(b"\x80").read_varint()

    def test_overlong_varint_rejected(self):
        with pytest.raises(SerializationError):
            WireReader(b"\xff" * 11 + b"\x00").read_varint()


class TestFields:
    def test_varint_field(self):
        writer = WireWriter()
        writer.field_varint(3, 150)
        reader = WireReader(writer.getvalue())
        assert reader.read_tag() == (3, WireType.VARINT)
        assert reader.read_varint() == 150

    def test_signed_field(self):
        writer = WireWriter()
        writer.field_signed(1, -42)
        reader = WireReader(writer.getvalue())
        reader.read_tag()
        assert reader.read_signed() == -42

    def test_string_field(self):
        writer = WireWriter()
        writer.field_str(2, "héron")
        reader = WireReader(writer.getvalue())
        reader.read_tag()
        assert reader.read_str() == "héron"

    def test_double_field(self):
        writer = WireWriter()
        writer.field_double(4, 3.14159)
        reader = WireReader(writer.getvalue())
        assert reader.read_tag() == (4, WireType.FIXED64)
        assert reader.read_double() == 3.14159

    def test_bool_field(self):
        writer = WireWriter()
        writer.field_bool(1, True)
        writer.field_bool(2, False)
        reader = WireReader(writer.getvalue())
        reader.read_tag()
        assert reader.read_varint() == 1
        reader.read_tag()
        assert reader.read_varint() == 0

    def test_packed_varints(self):
        values = [0, 1, 127, 128, 300, 1 << 40]
        writer = WireWriter()
        writer.field_packed_varints(9, values)
        reader = WireReader(writer.getvalue())
        reader.read_tag()
        assert reader.read_packed_varints() == values

    def test_packed_varints_empty(self):
        writer = WireWriter()
        writer.field_packed_varints(9, [])
        reader = WireReader(writer.getvalue())
        reader.read_tag()
        assert reader.read_packed_varints() == []

    def test_nested_message(self):
        inner = WireWriter()
        inner.field_varint(1, 7)
        outer = WireWriter()
        outer.field_message(5, inner)
        reader = WireReader(outer.getvalue())
        assert reader.read_tag() == (5, WireType.LENGTH)
        sub = reader.read_message_reader()
        sub.read_tag()
        assert sub.read_varint() == 7
        assert sub.at_end

    def test_field_zero_rejected(self):
        with pytest.raises(SerializationError):
            WireWriter().write_tag(0, WireType.VARINT)

    def test_bad_wire_type_rejected(self):
        with pytest.raises(SerializationError):
            WireWriter().write_tag(1, 7)


class TestSkipping:
    def test_skip_every_type(self):
        writer = WireWriter()
        writer.field_varint(1, 12345)
        writer.field_double(2, 2.5)
        writer.field_str(3, "skipped")
        writer.field_varint(4, 99)
        reader = WireReader(writer.getvalue())
        for field, wire_type in reader.fields():
            if field == 4:
                assert reader.read_varint() == 99
                return
            reader.skip(wire_type)
        pytest.fail("field 4 not found")

    def test_skip_truncated_rejected(self):
        writer = WireWriter()
        writer.field_str(1, "hello")
        data = writer.getvalue()[:-2]
        reader = WireReader(data)
        reader.read_tag()
        with pytest.raises(SerializationError):
            reader.skip(WireType.LENGTH)


class TestReaderWindow:
    def test_bad_window_rejected(self):
        with pytest.raises(SerializationError):
            WireReader(b"abc", start=2, end=1)

    def test_remaining(self):
        reader = WireReader(b"\x01\x02\x03")
        assert reader.remaining == 3
        reader.read_varint()
        assert reader.remaining == 2

    def test_truncated_double(self):
        with pytest.raises(SerializationError):
            WireReader(b"\x00" * 4).read_double()

    def test_truncated_bytes(self):
        writer = WireWriter()
        writer.write_varint(10)  # claims 10 bytes follow
        with pytest.raises(SerializationError):
            WireReader(writer.getvalue() + b"ab").read_bytes()


class TestWriterReuse:
    def test_clear_resets_buffer(self):
        writer = WireWriter()
        writer.field_varint(1, 1)
        assert len(writer) > 0
        writer.clear()
        assert len(writer) == 0
        assert writer.getvalue() == b""
