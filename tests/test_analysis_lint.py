"""Tests for the determinism lint (repro.analysis.lint, rules D001-D007).

Each rule has a positive fixture (``*_bad.pyviol`` — the extension keeps
deliberate violations out of tree-wide lint walks) and a negative one
(``*_ok.py``). The tests pass fixtures to the linter by explicit path.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import (RULES, lint_paths, lint_source, main,
                                 rules_table)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO = Path(__file__).parent.parent


def _codes(violations):
    return [v.code for v in violations]


# -- per-rule fixture round-trips --------------------------------------------

@pytest.mark.parametrize("rule, bad_count", [
    ("D001", 3), ("D002", 3), ("D003", 2), ("D004", 3), ("D005", 2),
    ("D006", 2), ("D007", 2),
])
def test_bad_fixture_flags_exactly_its_rule(rule, bad_count):
    bad = FIXTURES / f"{rule.lower()}_bad.pyviol"
    violations = lint_paths([bad])
    assert _codes(violations) == [rule] * bad_count
    # Findings carry real positions and render as path:line:col: CODE msg.
    for violation in violations:
        assert violation.line > 0 and violation.col > 0
        assert violation.format().startswith(f"{bad}:")
        assert f" {rule} " in violation.format()


@pytest.mark.parametrize("rule", ["D001", "D002", "D003", "D004", "D005",
                                  "D006", "D007"])
def test_ok_fixture_is_clean(rule):
    ok = FIXTURES / f"{rule.lower()}_ok.py"
    assert lint_paths([ok]) == []


# -- targeted rule behaviour -------------------------------------------------

def test_d001_resolves_import_aliases():
    source = (
        "import time as t\n"
        "from datetime import datetime as dt\n"
        "a = t.monotonic()\n"
        "b = dt.utcnow()\n"
    )
    assert _codes(lint_source(source)) == ["D001", "D001"]


def test_d002_seeded_random_is_allowed_unseeded_is_not():
    assert lint_source("import random\nr = random.Random(42)\n") == []
    assert _codes(lint_source("import random\nr = random.Random()\n")) \
        == ["D002"]
    assert _codes(lint_source("from random import choice\n")) == ["D002"]


def test_d003_requires_scheduling_call_in_body():
    looping = "for x in set(xs):\n    total += x\n"
    assert lint_source(looping) == []
    scheduling = "for x in set(xs):\n    sim.schedule(0.0, x)\n"
    assert _codes(lint_source(scheduling)) == ["D003"]
    set_algebra = "for x in set(a) | b:\n    sm.send(x, 'm')\n"
    assert _codes(lint_source(set_algebra)) == ["D003"]
    # Plain `a | b` is ambiguous (ints, dict merge) and is not flagged.
    assert lint_source("for x in a | b:\n    sm.send(x, 'm')\n") == []


def test_d004_only_fires_inside_component_subclasses():
    plain = "class C:\n    def f(self, x=[]):\n        pass\n"
    assert lint_source(plain) == []
    component = "class C(Bolt):\n    def f(self, x=[]):\n        pass\n"
    assert _codes(lint_source(component)) == ["D004"]
    # Nested helper defs are not component methods.
    nested = ("class C(Bolt):\n"
              "    def f(self):\n"
              "        def helper(x=[]):\n"
              "            return x\n"
              "        return helper\n")
    assert lint_source(nested) == []


def test_d005_skips_none_and_string_comparands():
    assert lint_source("if start_time is None: pass\n") == []
    assert lint_source("if start_time == None: pass\n") == []
    assert lint_source("if mode == 'time': pass\n") == []
    assert _codes(lint_source("if etime == 3.0: pass\n")) == ["D005"]


def test_d006_needs_stateful_and_snapshot_in_same_body():
    bad = ("class C:\n"
           "    stateful = True\n"
           "    def snapshot_state(self):\n"
           "        return {}\n")
    assert _codes(lint_source(bad)) == ["D006"]
    # Declaring key_groups anywhere in the class satisfies the rule.
    class_attr = bad.replace("stateful = True",
                             "stateful = True\n    key_groups = 4")
    assert lint_source(class_attr) == []
    in_method = ("class C:\n"
                 "    stateful = True\n"
                 "    def __init__(self):\n"
                 "        self.key_groups = 0\n"
                 "    def snapshot_state(self):\n"
                 "        return {}\n")
    assert lint_source(in_method) == []


def test_d007_only_flags_bare_views_inside_snapshot_state():
    bad = ("class C:\n"
           "    def snapshot_state(self):\n"
           "        return list(v for v in self.counts.values())\n")
    assert _codes(lint_source(bad)) == ["D007"]
    sunk = ("class C:\n"
            "    def snapshot_state(self):\n"
            "        return sorted(self.counts.items())\n")
    assert lint_source(sunk) == []
    elsewhere = ("class C:\n"
                 "    def rebuild(self):\n"
                 "        return list(self.counts.items())\n")
    assert lint_source(elsewhere) == []


# -- pragmas -----------------------------------------------------------------

def test_pragma_fixture_fully_suppressed():
    assert lint_paths([FIXTURES / "pragmas.py"]) == []


def test_line_pragma_suppresses_only_its_line_and_code():
    source = (
        "import time\n"
        "a = time.time()  # lint: allow[D001] harness\n"
        "b = time.time()\n"
    )
    violations = lint_source(source)
    assert _codes(violations) == ["D001"]
    assert violations[0].line == 3


def test_line_pragma_wrong_code_does_not_suppress():
    source = "import time\na = time.time()  # lint: allow[D002]\n"
    assert _codes(lint_source(source)) == ["D001"]


def test_file_pragma_suppresses_everywhere():
    source = (
        "# lint: allow-file[D001] measurement module\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.perf_counter()\n"
    )
    assert lint_source(source) == []


def test_syntax_error_reports_e999():
    violations = lint_source("def broken(:\n", path="bad.py")
    assert _codes(violations) == ["E999"]
    assert violations[0].path == "bad.py"


# -- driver / CLI ------------------------------------------------------------

def test_repo_source_tree_is_lint_clean():
    # Satellite guarantee: the shipped tree passes its own lint.
    assert lint_paths([REPO / "src", REPO / "tests"]) == []


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nx = time.time()\n")

    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    out = capsys.readouterr()
    assert "D001" in out.out
    assert main([str(tmp_path / "missing.py")]) == 2


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out
    assert rules_table() in out
