"""Tests for message schemas, the registry envelope, and lazy views."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.serialization.lazy import LazyMessageView
from repro.serialization.messages import (AckBatch, Heartbeat,
                                          MessageRegistry, Register,
                                          StateEntry, TupleBatch,
                                          decode_message, encode_message,
                                          peek_destination)

names = st.text(alphabet="abcdefghijklmnop_0123456789", min_size=0,
                max_size=30)
id_lists = st.lists(st.integers(min_value=0, max_value=(1 << 50)),
                    max_size=20)


def roundtrip(msg):
    return decode_message(encode_message(msg))


class TestTupleBatch:
    @given(dest=names, src=names, stream=names, batch_id=st.integers(0, 1 << 40),
           tuple_ids=id_lists, anchors=id_lists,
           payload=st.binary(max_size=64), size=st.integers(0, 1 << 30))
    def test_roundtrip(self, dest, src, stream, batch_id, tuple_ids, anchors,
                       payload, size):
        msg = TupleBatch(dest_instance=dest, source_instance=src,
                         stream=stream, batch_id=batch_id,
                         tuple_ids=tuple_ids, anchors=anchors,
                         payload=payload, payload_size=size)
        out = roundtrip(msg)
        assert out.dest_instance == dest
        assert out.source_instance == src
        assert out.stream == stream
        assert out.batch_id == batch_id
        assert out.tuple_ids == tuple_ids
        assert out.anchors == anchors
        assert out.payload == payload
        assert out.payload_size == size

    def test_count_prefers_values(self):
        msg = TupleBatch(values=["a", "b", "c"], tuple_ids=[1])
        assert msg.count == 3

    def test_count_falls_back_to_tuple_ids(self):
        assert TupleBatch(tuple_ids=[1, 2]).count == 2

    def test_values_not_wire_encoded(self):
        msg = TupleBatch(dest_instance="d", values=["in-memory-only"])
        assert roundtrip(msg).values == []

    def test_reset_scrubs_everything(self):
        msg = TupleBatch(dest_instance="d", source_instance="s", stream="x",
                         batch_id=9, tuple_ids=[1], anchors=[2],
                         payload=b"p", payload_size=3, values=[1])
        msg.reset()
        assert msg == TupleBatch()


class TestAckBatch:
    @given(dest=names, src=names, acked=id_lists, failed=id_lists)
    def test_roundtrip(self, dest, src, acked, failed):
        msg = AckBatch(dest_instance=dest, source_instance=src,
                       acked_ids=acked, failed_ids=failed)
        out = roundtrip(msg)
        assert out == msg

    def test_count(self):
        assert AckBatch(acked_ids=[1, 2], failed_ids=[3]).count == 3

    def test_reset(self):
        msg = AckBatch(dest_instance="d", acked_ids=[1])
        msg.reset()
        assert msg == AckBatch()


class TestControlMessages:
    def test_register_roundtrip(self):
        msg = Register(kind="stmgr", name="stmgr-3", container_id=3)
        assert roundtrip(msg) == msg

    def test_heartbeat_roundtrip(self):
        msg = Heartbeat(sender="instance-1", time=123.456, sequence=9)
        assert roundtrip(msg) == msg

    def test_state_entry_roundtrip(self):
        msg = StateEntry(path="/topologies/wc/packingplan", data=b"\x00\x01",
                         version=4, ephemeral=True)
        assert roundtrip(msg) == msg


class TestRegistry:
    def test_unknown_type_id_rejected(self):
        with pytest.raises(SerializationError):
            decode_message(b"\x7f")  # type id 127 unregistered

    def test_duplicate_registration_rejected(self):
        registry = MessageRegistry()
        registry.register(1, TupleBatch)
        with pytest.raises(SerializationError):
            registry.register(1, AckBatch)

    def test_unregistered_class_rejected(self):
        registry = MessageRegistry()
        with pytest.raises(SerializationError):
            encode_message(Heartbeat(), registry)

    def test_dispatch_to_correct_class(self):
        for msg in (TupleBatch(dest_instance="x"), AckBatch(acked_ids=[1]),
                    Register(kind="k"), Heartbeat(sender="s")):
            assert type(roundtrip(msg)) is type(msg)


class TestLazyDeserialization:
    def make_raw(self, dest="container_1_count_3"):
        msg = TupleBatch(dest_instance=dest, source_instance="src",
                         tuple_ids=list(range(50)), payload=b"x" * 200)
        return encode_message(msg), msg

    def test_peek_destination(self):
        raw, _msg = self.make_raw()
        assert peek_destination(raw) == "container_1_count_3"

    def test_peek_rejects_non_tuple_batch(self):
        raw = encode_message(Heartbeat(sender="s"))
        with pytest.raises(SerializationError):
            peek_destination(raw)

    def test_view_destination_without_materializing(self):
        raw, _msg = self.make_raw()
        view = LazyMessageView(raw)
        assert view.destination() == "container_1_count_3"
        assert not view.is_materialized

    def test_view_forwards_raw_bytes_unchanged(self):
        raw, _msg = self.make_raw()
        view = LazyMessageView(raw)
        view.destination()
        assert view.raw == raw
        assert view.size == len(raw)

    def test_materialize_full_decode(self):
        raw, msg = self.make_raw()
        view = LazyMessageView(raw)
        decoded = view.materialize()
        assert view.is_materialized
        assert decoded.tuple_ids == msg.tuple_ids
        assert decoded.payload == msg.payload

    def test_materialize_memoized(self):
        raw, _msg = self.make_raw()
        view = LazyMessageView(raw)
        assert view.materialize() is view.materialize()

    def test_destination_after_materialize_uses_decoded(self):
        raw, _msg = self.make_raw()
        view = LazyMessageView(raw)
        view.materialize()
        assert view.destination() == "container_1_count_3"

    def test_materialize_wrong_type_rejected(self):
        view = LazyMessageView(encode_message(Register(kind="k")))
        with pytest.raises(TypeError):
            view.materialize()

    @given(dest=names)
    def test_peek_matches_full_decode(self, dest):
        raw = encode_message(TupleBatch(dest_instance=dest))
        assert peek_destination(raw) == decode_message(raw).dest_instance
