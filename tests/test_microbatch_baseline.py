"""Tests for the micro-batch (Spark-Streaming-style) baseline."""

import pytest

from repro.api.component import Bolt, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.topology import TopologyBuilder
from repro.baselines.microbatch.engine import MicroBatchEngine
from repro.common.config import Config
from repro.common.errors import TopologyError
from repro.workloads.wordcount import wordcount_topology


def make_engine(batch_interval=0.2, input_rate=50_000.0, parallelism=2,
                sample_cap=64):
    config = Config().set(Keys.SAMPLE_CAP, sample_cap)
    topology = wordcount_topology(parallelism, corpus_size=1000,
                                  config=config)
    return MicroBatchEngine(topology, batch_interval=batch_interval,
                            input_rate=input_rate, executor_count=4)


class TestMicroBatchExecution:
    def test_records_processed(self):
        engine = make_engine()
        result = engine.run(3.0)
        assert result.records_processed > 0
        assert result.batches_completed >= 10

    def test_throughput_tracks_input_rate(self):
        engine = make_engine(input_rate=40_000.0)
        result = engine.run(5.0)
        rate = result.records_processed / 5.0
        assert rate == pytest.approx(40_000.0, rel=0.15)

    def test_user_code_actually_runs(self):
        engine = make_engine()
        engine.run(2.0)
        counts = engine.stage_bolts[0].counts
        assert len(counts) > 0
        assert sum(counts.values()) > 0

    def test_latency_floor_is_batch_scale(self):
        """The Section III-B claim: latency cannot go below ~interval/2."""
        engine = make_engine(batch_interval=0.5)
        result = engine.run(5.0)
        assert result.mean_latency >= 0.25

    def test_latency_scales_with_interval(self):
        small = make_engine(batch_interval=0.1).run(5.0)
        large = make_engine(batch_interval=1.0).run(10.0)
        assert large.mean_latency > small.mean_latency * 3

    def test_stable_at_moderate_rate(self):
        engine = make_engine(input_rate=30_000.0)
        result = engine.run(5.0)
        assert not result.fell_behind

    def test_deterministic(self):
        first = make_engine().run(2.0)
        second = make_engine().run(2.0)
        assert first.records_processed == second.records_processed
        assert first.mean_latency == second.mean_latency


class TestTopologyConstraints:
    def test_multi_spout_rejected(self):
        class S(Spout):
            outputs = {"default": ["x"]}

            def next_tuple(self, collector):
                collector.emit(["x"])

        class B(Bolt):
            def execute(self, tup, collector):
                pass

        builder = TopologyBuilder("multi")
        builder.set_spout("a", S())
        builder.set_spout("b", S())
        builder.set_bolt("c", B()).shuffle_grouping("a") \
            .shuffle_grouping("b")
        with pytest.raises(TopologyError, match="exactly 1 spout"):
            MicroBatchEngine(builder.build())

    def test_branching_rejected(self):
        class S(Spout):
            outputs = {"default": ["x"]}

            def next_tuple(self, collector):
                collector.emit(["x"])

        class B(Bolt):
            def execute(self, tup, collector):
                pass

        builder = TopologyBuilder("branchy")
        builder.set_spout("s", S())
        builder.set_bolt("left", B()).shuffle_grouping("s")
        builder.set_bolt("right", B()).shuffle_grouping("s")
        with pytest.raises(TopologyError, match="linear"):
            MicroBatchEngine(builder.build())

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_engine(batch_interval=0.0)
        with pytest.raises(ValueError):
            make_engine(input_rate=-1.0)
