"""Structural checks on the examples: they compile, document
themselves, and expose a main() — without paying their full runtime in
the unit suite (each example is executed in the final verification run).
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    """The deliverable promises at least three runnable examples."""
    assert len(EXAMPLE_FILES) >= 3
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExampleStructure:
    def test_compiles(self, path):
        ast.parse(path.read_text(), filename=str(path))

    def test_has_module_docstring_with_run_line(self, path):
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree)
        assert doc, f"{path.name} lacks a module docstring"
        assert f"python examples/{path.name}" in doc, \
            f"{path.name}'s docstring lacks its run command"

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source
        assert "def main(" in source

    def test_imports_resolve(self, path):
        """Every repro import the example uses actually exists."""
        import importlib
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and \
                    node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), \
                        f"{path.name}: {node.module}.{alias.name} missing"
