"""Tests for the Resource Manager policies (round-robin, FFD) and repack."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.component import Bolt, Spout
from repro.api.config_keys import TopologyConfigKeys as TopoKeys
from repro.api.topology import TopologyBuilder
from repro.common.config import Config
from repro.common.errors import PackingError
from repro.common.resources import Resource
from repro.common.units import GB
from repro.packing.base import PackingConfigKeys
from repro.packing.ffd import FirstFitDecreasingPacking
from repro.packing.round_robin import RoundRobinPacking


class NullSpout(Spout):
    outputs = {"default": ["x"]}

    def next_tuple(self, collector):
        pass


class NullBolt(Bolt):
    def execute(self, tup, collector):
        pass


def wordcount(spouts=4, bolts=4, spout_resource=None, bolt_resource=None):
    builder = TopologyBuilder("wc")
    builder.set_spout("spout", NullSpout(), parallelism=spouts,
                      resource=spout_resource)
    builder.set_bolt("bolt", NullBolt(), parallelism=bolts,
                     resource=bolt_resource).shuffle_grouping("spout")
    return builder.build()


def make_rm(cls, topology, config=None):
    manager = cls()
    manager.initialize(config or Config(), topology)
    return manager


class TestRoundRobinPack:
    def test_container_count(self):
        plan = make_rm(RoundRobinPacking, wordcount(4, 4)).pack()
        assert plan.container_count == math.ceil(8 / 4)

    def test_matches_topology(self):
        plan = make_rm(RoundRobinPacking, wordcount(5, 3)).pack()
        assert plan.matches_topology({"spout": 5, "bolt": 3})

    def test_load_balanced(self):
        plan = make_rm(RoundRobinPacking, wordcount(10, 10)).pack()
        sizes = [len(c.instances) for c in plan.containers]
        assert max(sizes) - min(sizes) <= 1

    def test_components_mixed_within_containers(self):
        plan = make_rm(RoundRobinPacking, wordcount(8, 8)).pack()
        for c in plan.containers:
            kinds = {i.component for i in c.instances}
            assert kinds == {"spout", "bolt"}

    def test_homogeneous_containers(self):
        plan = make_rm(RoundRobinPacking, wordcount(5, 4)).pack()
        sizes = {c.required for c in plan.containers}
        assert len(sizes) == 1

    def test_instances_per_container_honored(self):
        config = Config().set(TopoKeys.INSTANCES_PER_CONTAINER, 2)
        plan = make_rm(RoundRobinPacking, wordcount(4, 4), config).pack()
        assert plan.container_count == 4
        assert all(len(c.instances) <= 2 for c in plan.containers)

    def test_padding_included(self):
        config = Config().set(TopoKeys.CONTAINER_CPU_PADDING, 2.0)
        plan = make_rm(RoundRobinPacking, wordcount(1, 1), config).pack()
        instance_cpu = sum(i.resource.cpu
                           for i in plan.containers[0].instances)
        assert plan.containers[0].required.cpu == pytest.approx(
            instance_cpu + 2.0)

    def test_uninitialized_rejected(self):
        with pytest.raises(PackingError):
            RoundRobinPacking().pack()

    @given(spouts=st.integers(1, 40), bolts=st.integers(1, 40),
           slots=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_pack_always_valid(self, spouts, bolts, slots):
        config = Config().set(TopoKeys.INSTANCES_PER_CONTAINER, slots)
        plan = make_rm(RoundRobinPacking, wordcount(spouts, bolts),
                       config).pack()
        assert plan.matches_topology({"spout": spouts, "bolt": bolts})
        assert plan.container_count == math.ceil((spouts + bolts) / slots)


class TestFFDPack:
    def test_minimizes_containers(self):
        """FFD packs tighter than RR when sizes are skewed."""
        topology = wordcount(2, 6,
                             spout_resource=Resource(cpu=4, ram=4 * GB),
                             bolt_resource=Resource(cpu=1, ram=1 * GB))
        rr_cfg = Config().set(TopoKeys.INSTANCES_PER_CONTAINER, 2)
        rr_plan = make_rm(RoundRobinPacking, topology, rr_cfg).pack()
        ffd_plan = make_rm(FirstFitDecreasingPacking, topology).pack()
        assert ffd_plan.container_count < rr_plan.container_count

    def test_capacity_respected(self):
        topology = wordcount(6, 6, spout_resource=Resource(cpu=3, ram=3 * GB),
                             bolt_resource=Resource(cpu=2, ram=2 * GB))
        manager = make_rm(FirstFitDecreasingPacking, topology)
        plan = manager.pack()
        capacity = manager.bin_capacity()
        for c in plan.containers:
            assert c.instance_resource.fits_in(capacity)

    def test_heterogeneous_containers_allowed(self):
        topology = wordcount(1, 7)
        plan = make_rm(FirstFitDecreasingPacking, topology).pack()
        # Last container may be smaller than the full ones.
        assert len({c.required for c in plan.containers}) >= 1

    def test_oversized_instance_rejected(self):
        topology = wordcount(1, 1, spout_resource=Resource(cpu=100))
        with pytest.raises(PackingError, match="bin capacity"):
            make_rm(FirstFitDecreasingPacking, topology).pack()

    def test_custom_bin_capacity(self):
        config = Config().set(PackingConfigKeys.FFD_MAX_CONTAINER_CPU, 2.0)
        plan = make_rm(FirstFitDecreasingPacking, wordcount(2, 2),
                       config).pack()
        assert plan.container_count == 2  # 2 cpu bins, 1-cpu instances

    @given(spouts=st.integers(1, 30), bolts=st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_pack_always_valid(self, spouts, bolts):
        plan = make_rm(FirstFitDecreasingPacking,
                       wordcount(spouts, bolts)).pack()
        assert plan.matches_topology({"spout": spouts, "bolt": bolts})


class TestRepack:
    @pytest.fixture(params=[RoundRobinPacking, FirstFitDecreasingPacking])
    def manager(self, request):
        return make_rm(request.param, wordcount(4, 4))

    def test_scale_up_matches_target(self, manager):
        plan = manager.pack()
        scaled = manager.repack(plan, {"bolt": 7})
        assert scaled.matches_topology({"spout": 4, "bolt": 7})

    def test_scale_up_preserves_existing_placement(self, manager):
        plan = manager.pack()
        before = {(i.component, i.task_id): c.id
                  for c in plan.containers for i in c.instances}
        scaled = manager.repack(plan, {"bolt": 7})
        after = {(i.component, i.task_id): c.id
                 for c in scaled.containers for i in c.instances}
        for key, container_id in before.items():
            assert after[key] == container_id, f"{key} moved"

    def test_scale_down(self, manager):
        plan = manager.pack()
        scaled = manager.repack(plan, {"bolt": 1})
        assert scaled.matches_topology({"spout": 4, "bolt": 1})

    def test_scale_down_removes_highest_task_ids(self, manager):
        plan = manager.pack()
        scaled = manager.repack(plan, {"bolt": 2})
        remaining = [t for t, _c in scaled.tasks_of("bolt")]
        assert remaining == [0, 1]

    def test_scale_to_zero_rejected(self, manager):
        plan = manager.pack()
        with pytest.raises(PackingError):
            manager.repack(plan, {"bolt": 0})

    def test_unknown_component_rejected(self, manager):
        plan = manager.pack()
        with pytest.raises(PackingError):
            manager.repack(plan, {"ghost": 2})

    def test_empty_containers_dropped(self, manager):
        plan = manager.pack()
        scaled = manager.repack(plan, {"bolt": 1, "spout": 1})
        assert all(c.instances for c in scaled.containers)
        assert scaled.container_count <= plan.container_count

    def test_noop_repack_is_stable(self, manager):
        plan = manager.pack()
        scaled = manager.repack(plan, {})
        assert plan.diff(scaled).is_empty


class TestRepackPolicySpecifics:
    def test_rr_new_instances_fill_free_slots_first(self):
        config = Config().set(TopoKeys.INSTANCES_PER_CONTAINER, 4)
        manager = make_rm(RoundRobinPacking, wordcount(3, 2), config)
        plan = manager.pack()  # 5 instances -> 2 containers (4 + 1)
        scaled = manager.repack(plan, {"bolt": 5})
        # 3 new bolts; 3 free slots existed (capacity 8); no new container.
        assert scaled.container_count == plan.container_count

    def test_rr_spills_to_new_container_when_full(self):
        config = Config().set(TopoKeys.INSTANCES_PER_CONTAINER, 2)
        manager = make_rm(RoundRobinPacking, wordcount(2, 2), config)
        plan = manager.pack()  # 4 instances, 2 slots -> 2 full containers
        scaled = manager.repack(plan, {"bolt": 3})
        assert scaled.container_count == 3

    def test_ffd_exploits_free_space(self):
        topology = wordcount(2, 2, spout_resource=Resource(cpu=3, ram=GB),
                             bolt_resource=Resource(cpu=1, ram=GB))
        manager = make_rm(FirstFitDecreasingPacking, topology)
        plan = manager.pack()
        # 8-cpu bins hold (3+3+1+1)=8: one container. Add a 1-cpu bolt ->
        # needs a new bin only because the first is exactly full.
        scaled = manager.repack(plan, {"bolt": 3})
        assert scaled.container_count == plan.container_count + 1
        smaller = manager.repack(plan, {"spout": 1})  # frees 3 cpu
        rescaled = manager.repack(smaller, {"bolt": 3})
        assert rescaled.container_count == smaller.container_count
