"""Cross-cutting engine invariants: conservation, determinism, isolation.

These are the properties a streaming engine must never violate no matter
the configuration; each test sweeps a configuration axis.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.workloads.wordcount import wordcount_topology


def run_wordcount(parallelism=2, seconds=0.6, **overrides):
    cfg = Config()
    cfg.set(Keys.BATCH_SIZE, 40)
    for key, value in overrides.items():
        cfg.set(getattr(Keys, key.upper()), value)
    cluster = HeronCluster.local()
    handle = cluster.submit_topology(
        wordcount_topology(parallelism, corpus_size=300, config=cfg))
    handle.wait_until_running()
    cluster.run_for(seconds)
    return cluster, handle


class TestTupleConservation:
    """Emitted = routed = executed (+in flight), in every configuration."""

    CONFIG_AXES = [
        {},
        {"lazy_deserialization": False, "mempool_enabled": False},
        {"cache_enabled": False},
        {"cache_drain_frequency_ms": 2.0},
        {"acking_enabled": True, "ack_tracking": "counted",
         "max_spout_pending": 400},
        {"acking_enabled": True, "ack_tracking": "exact",
         "max_spout_pending": 200},
        {"sample_cap": 8},
    ]

    @pytest.mark.parametrize("overrides", CONFIG_AXES,
                             ids=lambda o: ",".join(o) or "defaults")
    def test_no_tuples_invented_or_lost(self, overrides):
        cluster, handle = run_wordcount(**overrides)
        # Quiesce: stop emission, drain everything in flight.
        handle.deactivate()
        cluster.run_for(1.0)
        totals = handle.totals()
        snapshot = handle.snapshot()
        emitted = snapshot["word"]["emitted"]
        executed = snapshot["count"]["executed"]
        assert executed == pytest.approx(emitted, rel=1e-6), \
            f"emitted {emitted} != executed {executed}"
        assert handle.sm_totals()["dropped_batches"] == 0
        if overrides.get("acking_enabled"):
            acked = totals["acked"] + totals["failed"]
            assert acked == pytest.approx(emitted, rel=1e-6)

    @pytest.mark.parametrize("overrides", CONFIG_AXES,
                             ids=lambda o: ",".join(o) or "defaults")
    def test_determinism_across_runs(self, overrides):
        def run():
            _cluster, handle = run_wordcount(seconds=0.4, **overrides)
            return handle.totals()

        assert run() == run()


class TestLittlesLaw:
    """In the acked closed loop, in-flight ≈ throughput × latency."""

    def test_littles_law_holds(self):
        cfg = Config()
        cfg.set(Keys.BATCH_SIZE, 500)
        cfg.set(Keys.SAMPLE_CAP, 16)
        cfg.set(Keys.ACKING_ENABLED, True)
        cfg.set(Keys.ACK_TRACKING, "counted")
        cfg.set(Keys.MAX_SPOUT_PENDING, 5_000)
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(
            wordcount_topology(4, corpus_size=300, config=cfg))
        handle.wait_until_running()
        cluster.run_for(1.0)  # warmup
        t0 = cluster.now
        base = handle.totals()["acked"]
        lat0 = handle.latency_stats()
        window0 = (lat0.count, lat0.total)
        cluster.run_for(2.0)
        throughput = (handle.totals()["acked"] - base) / (cluster.now - t0)
        lat1 = handle.latency_stats()
        latency = (lat1.total - window0[1]) / (lat1.count - window0[0])
        inflight = sum(inst.pending for inst in
                       handle._runtime.instances.values() if inst.is_spout)
        predicted = throughput * latency
        assert predicted == pytest.approx(inflight, rel=0.35)

    def test_latency_scales_with_pending_cap(self):
        def latency_at(cap):
            cfg = Config()
            cfg.set(Keys.BATCH_SIZE, 500)
            cfg.set(Keys.SAMPLE_CAP, 16)
            cfg.set(Keys.ACKING_ENABLED, True)
            cfg.set(Keys.ACK_TRACKING, "counted")
            cfg.set(Keys.MAX_SPOUT_PENDING, cap)
            # Dense containers saturate the SM, so the pending window is
            # the binding constraint (the Fig. 11 regime).
            cfg.set(Keys.INSTANCES_PER_CONTAINER, 8)
            cluster = HeronCluster.local()
            handle = cluster.submit_topology(
                wordcount_topology(4, corpus_size=300, config=cfg))
            handle.wait_until_running()
            cluster.run_for(2.0)
            return handle.latency_stats().mean

        low, high = latency_at(2_000), latency_at(40_000)
        assert high > 3 * low


class TestIsolationBetweenTopologies:
    def test_one_slow_topology_does_not_block_another(self):
        """Process-level isolation: each topology has its own actors, so
        an overloaded topology cannot starve a healthy one."""
        cluster = HeronCluster.on_yarn(machines=8)
        cfg_fast = Config().set(Keys.BATCH_SIZE, 50)
        fast = cluster.submit_topology(
            wordcount_topology(2, corpus_size=300, config=cfg_fast,
                               name="fast"))
        cfg_slow = Config().set(Keys.BATCH_SIZE, 50) \
            .set(Keys.CACHE_DRAIN_FREQUENCY_MS, 1.0) \
            .set(Keys.MEMPOOL_ENABLED, False) \
            .set(Keys.LAZY_DESERIALIZATION, False)
        slow = cluster.submit_topology(
            wordcount_topology(4, corpus_size=300, config=cfg_slow,
                               name="slow"))
        fast.wait_until_running()
        slow.wait_until_running()
        cluster.run_for(1.0)
        fast_alone_rate = fast.totals()["executed"]
        assert fast_alone_rate > 0
        # The fast topology's throughput is within normal range despite
        # the unoptimized neighbour.
        solo_cluster = HeronCluster.on_yarn(machines=8)
        solo = solo_cluster.submit_topology(
            wordcount_topology(2, corpus_size=300, config=cfg_fast,
                               name="fast"))
        solo.wait_until_running()
        solo_cluster.run_for(1.0)
        assert fast.totals()["executed"] == pytest.approx(
            solo.totals()["executed"], rel=0.05)


class TestConfigSweepProperties:
    @given(batch=st.sampled_from([10, 50, 200, 1000]),
           drain=st.sampled_from([2.0, 10.0, 30.0]))
    @settings(max_examples=8, deadline=None)
    def test_flow_under_any_batch_and_drain(self, batch, drain):
        cluster, handle = run_wordcount(
            seconds=0.4, batch_size=batch,
            cache_drain_frequency_ms=drain)
        assert handle.totals()["executed"] > 0
        assert handle.sm_totals()["dropped_batches"] == 0
