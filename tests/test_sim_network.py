"""Tests for the network latency model and RNG streams."""

import pytest

from repro.simulation.actors import Location
from repro.simulation.costs import CostModel
from repro.simulation.network import Network, UniformNetwork
from repro.simulation.rng import RngRegistry, RngStream


class TestNetwork:
    def setup_method(self):
        self.costs = CostModel()
        self.net = Network(self.costs)

    def test_same_process(self):
        a = Location(0, 0, 0)
        assert self.net.latency(a, a) == self.costs.net_local_process

    def test_same_container_different_process(self):
        a, b = Location(0, 0, 0), Location(0, 0, 1)
        assert self.net.latency(a, b) == self.costs.net_same_container

    def test_same_machine_different_container(self):
        a, b = Location(0, 0, 0), Location(0, 1, 0)
        assert self.net.latency(a, b) == self.costs.net_same_machine

    def test_cross_machine(self):
        a, b = Location(0, 0, 0), Location(1, 0, 0)
        assert self.net.latency(a, b) == self.costs.net_cross_machine

    def test_distances_are_ordered(self):
        """Farther apart must never be cheaper."""
        local = self.net.latency(Location(0, 0, 0), Location(0, 0, 0))
        container = self.net.latency(Location(0, 0, 0), Location(0, 0, 1))
        machine = self.net.latency(Location(0, 0, 0), Location(0, 1, 0))
        cross = self.net.latency(Location(0, 0, 0), Location(1, 0, 0))
        assert local < container < machine < cross

    def test_uniform_network(self):
        net = UniformNetwork(0.5)
        assert net.latency(Location(0, 0, 0), Location(9, 9, 9)) == 0.5

    def test_uniform_rejects_negative(self):
        with pytest.raises(ValueError):
            UniformNetwork(-0.1)


class TestRng:
    def test_same_seed_same_sequence(self):
        a = RngStream(42, "spout")
        b = RngStream(42, "spout")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        a = RngStream(42, "spout")
        b = RngStream(42, "bolt")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStream(1, "spout")
        b = RngStream(2, "spout")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_registry_memoizes(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_jitter_bounds(self):
        stream = RngStream(0, "jitter")
        for _ in range(100):
            value = stream.jitter(10.0, 0.1)
            assert 9.0 <= value <= 11.0

    def test_jitter_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            RngStream(0, "x").jitter(1.0, -0.5)

    def test_randint_choice_sample_shuffle(self):
        stream = RngStream(0, "misc")
        assert 1 <= stream.randint(1, 3) <= 3
        assert stream.choice([1, 2, 3]) in (1, 2, 3)
        assert sorted(stream.sample(range(10), 3))[0] >= 0
        items = list(range(10))
        stream.shuffle(items)
        assert sorted(items) == list(range(10))

    def test_expovariate_positive(self):
        stream = RngStream(0, "expo")
        assert stream.expovariate(2.0) > 0


class TestLatencyMemo:
    """Network.latency is memoized per (src, dst); swaps invalidate."""

    def _counting_network(self):
        net = Network(CostModel())
        computes = []
        original = net._compute

        def counted(src, dst):
            computes.append((src, dst))
            return original(src, dst)

        net._compute = counted
        return net, computes

    def test_repeat_lookups_compute_once(self):
        net, computes = self._counting_network()
        a, b = Location.of(0, 0, 0), Location.of(1, 0, 0)
        first = net.latency(a, b)
        for _ in range(10):
            assert net.latency(a, b) == first
        assert len(computes) == 1

    def test_direction_is_its_own_entry(self):
        net, computes = self._counting_network()
        a, b = Location.of(0, 0, 0), Location.of(0, 0, 1)
        assert net.latency(a, b) == net.latency(b, a)
        assert len(computes) == 2

    def test_costs_swap_invalidates_memo(self):
        import dataclasses

        net = Network(CostModel())
        a, b = Location.of(0, 0, 0), Location.of(2, 0, 0)
        before = net.latency(a, b)
        net.costs = dataclasses.replace(net.costs,
                                        net_cross_machine=before * 2)
        assert net.latency(a, b) == before * 2

    def test_invalidate_cache_recomputes(self):
        net, computes = self._counting_network()
        a, b = Location.of(0, 0, 0), Location.of(0, 1, 0)
        net.latency(a, b)
        net.invalidate_cache()
        net.latency(a, b)
        assert len(computes) == 2


class TestLocationInterning:
    def test_of_returns_same_object(self):
        assert Location.of(3, 2, 1) is Location.of(3, 2, 1)

    def test_interned_equals_constructed(self):
        assert Location.of(3, 2, 1) == Location(3, 2, 1)
        assert hash(Location.of(3, 2, 1)) == hash(Location(3, 2, 1))
