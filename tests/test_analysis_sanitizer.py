"""Tests for the dynamic simulation sanitizer (repro.analysis.sanitize)."""

from __future__ import annotations

import pytest

from repro.analysis.sanitize import (ChannelFifoChecker, KernelSanitizer,
                                     SanitizerViolation, digest_state,
                                     run_tie_probe)
from repro.common.errors import SimulationError
from repro.core.heron import HeronCluster
from repro.simulation.events import Simulator
from repro.workloads.wordcount import wordcount_topology


# -- opt-in mechanics --------------------------------------------------------

class TestOptIn:
    def test_default_simulator_has_no_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert Simulator().sanitizer is None

    def test_explicit_flag_enables(self):
        sim = Simulator(sanitize=True)
        assert isinstance(sim.sanitizer, KernelSanitizer)

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator().sanitizer is not None

    def test_explicit_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator(sanitize=False).sanitizer is None

    def test_lifo_requires_sanitize_mode(self, monkeypatch):
        # Pin the premise: with REPRO_SANITIZE=1 in the environment the
        # sanitizer would be on and lifo legitimately allowed.
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        with pytest.raises(SimulationError):
            Simulator(tie_order="lifo")

    def test_bad_tie_order_rejected(self):
        with pytest.raises(ValueError):
            KernelSanitizer(tie_order="random")


# -- simultaneity hazards (tie-order probe) ----------------------------------

class TestTieProbe:
    def test_order_dependent_handlers_are_flagged(self):
        """Two same-timestamp handlers on one cell: double then increment.
        fifo gives (1*2)+1 = 3, lifo gives (1+1)*2 = 4 — a hazard."""
        def factory(sim):
            cell = {"v": 1}

            def double():
                cell["v"] *= 2

            def increment():
                cell["v"] += 1

            sim.schedule(1.0, double)
            sim.schedule(1.0, increment)
            return lambda: cell

        result = run_tie_probe(factory, duration=2.0)
        assert result.hazard
        assert result.fifo_digest != result.lifo_digest
        assert result.fifo_report["tie_events"] >= 1

    def test_commutative_handlers_are_clean(self):
        def factory(sim):
            cell = {"v": 1}
            sim.schedule(1.0, lambda: cell.__setitem__("v", cell["v"] + 1))
            sim.schedule(1.0, lambda: cell.__setitem__("v", cell["v"] + 1))
            return lambda: cell

        result = run_tie_probe(factory, duration=2.0)
        assert not result.hazard

    def test_lifo_only_permutes_within_tie_groups(self):
        """Cross-time ordering is untouched by the lifo probe."""
        sim = Simulator(sanitize=True, tie_order="lifo")
        order = []
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(2.0, lambda: order.append("later-scheduled"))
        sim.run_until(3.0)
        assert order == ["early", "later-scheduled", "late"]

    def test_digest_state_is_order_insensitive_for_sets_and_dicts(self):
        assert digest_state({"a": 1, "b": 2}) == digest_state({"b": 2,
                                                               "a": 1})
        assert digest_state({1, 2, 3}) == digest_state({3, 1, 2})
        assert digest_state([1, 2]) != digest_state([2, 1])
        assert digest_state(0.1 + 0.2) != digest_state(0.3)


# -- kernel invariants -------------------------------------------------------

class TestKernelInvariants:
    def test_clean_run_is_silent(self):
        sim = Simulator(sanitize=True)
        sim.sanitizer.scan_interval = 1  # scan after every pop
        done = []
        for i in range(50):
            sim.schedule(0.1 * i, done.append, i)
        handle = sim.schedule(1.0, done.append, -1)
        handle.cancel()
        sim.run_until(10.0)
        assert len(done) == 50
        report = sim.sanitizer.report()
        assert report["violations"] == []
        assert report["full_scans"] >= 50

    def test_inflated_live_counter_detected(self):
        sim = Simulator(sanitize=True)
        sim.sanitizer.scan_interval = 1
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim._live += 2  # corrupt the O(1) counter
        with pytest.raises(SanitizerViolation, match="live-event counter"):
            sim.run_until(3.0)
        assert sim.sanitizer.report()["violations"]

    def test_negative_live_counter_detected(self):
        sim = Simulator(sanitize=True)
        sim.schedule(1.0, lambda: None)
        sim._live = 0  # next pop decrements it to -1
        with pytest.raises(SanitizerViolation, match="negative"):
            sim.run_until(2.0)

    def test_cancelled_but_in_heap_detected(self):
        sim = Simulator(sanitize=True)
        sim.sanitizer.scan_interval = 1
        sim.schedule(1.0, lambda: None)
        victim = sim.schedule(2.0, lambda: None)
        # Corrupt the handle directly, bypassing cancel()'s bookkeeping.
        victim.cancelled = True
        victim.fn = None
        victim.args = ()
        with pytest.raises(SanitizerViolation, match="cancelled"):
            sim.run_until(3.0)

    def test_clock_backwards_detected(self):
        sim = Simulator(sanitize=True)
        sani = sim.sanitizer
        sani.on_pop(sim, 5.0, 1, None)
        with pytest.raises(SanitizerViolation, match="backwards"):
            sani.on_pop(sim, 4.0, 2, None)

    def test_compaction_verified(self):
        """Cancel-heavy load triggers compaction; the post-compaction scan
        must pass (no tombstones left, counter exact)."""
        sim = Simulator(sanitize=True)
        handles = [sim.schedule(10.0, lambda: None) for _ in range(300)]
        for handle in handles[:250]:
            handle.cancel()
        assert sim._compactions >= 1
        sim.run_until(11.0)
        assert sim.sanitizer.report()["violations"] == []


# -- actor-model invariants --------------------------------------------------

class TestActorInvariants:
    def _actor(self, sim, handler):
        from repro.simulation.actors import (FunctionActor, Location,
                                             NetworkProtocol)

        class ZeroNet(NetworkProtocol):
            def latency(self, src, dst):
                return 0.0

        return FunctionActor(sim, "a0", Location.of(0, 0, 0),
                             network=ZeroNet(), handler=handler)

    def test_reentrant_delivery_detected(self):
        sim = Simulator(sanitize=True)
        calls = []

        def handler(actor, message):
            calls.append(message)
            if message == "first":
                actor.deliver("again")  # synchronous re-entry: forbidden

        actor = self._actor(sim, handler)
        sim.schedule(0.0, actor.deliver, "first")
        with pytest.raises(SanitizerViolation, match="re-entrant"):
            sim.run_until(1.0)

    def test_buffered_send_is_clean(self):
        sim = Simulator(sanitize=True)
        calls = []

        def handler(actor, message):
            calls.append(message)
            if message == "first":
                actor.send(actor, "again")  # buffered: the correct way

        actor = self._actor(sim, handler)
        sim.schedule(0.0, actor.deliver, "first")
        sim.run_until(1.0)
        assert calls == ["first", "again"]
        assert sim.sanitizer.report()["violations"] == []

    def test_spurious_completion_detected(self):
        sim = Simulator(sanitize=True)
        actor = self._actor(sim, lambda a, m: None)
        with pytest.raises(SanitizerViolation, match="stale"):
            actor._complete()  # idle actor: only a stale handle fires this


# -- per-channel FIFO --------------------------------------------------------

class TestChannelFifo:
    def _checker(self):
        return ChannelFifoChecker(KernelSanitizer())

    def test_in_order_is_clean(self):
        checker = self._checker()
        for _ in range(5):
            checker.observe("ch", checker.stamp("ch"))
        assert checker.stamped == 5 and checker.observed == 5

    def test_out_of_order_fails(self):
        checker = self._checker()
        first = checker.stamp("ch")
        second = checker.stamp("ch")
        checker.observe("ch", second)
        with pytest.raises(SanitizerViolation, match="FIFO violation"):
            checker.observe("ch", first)

    def test_duplicate_fails(self):
        checker = self._checker()
        stamped = checker.stamp("ch")
        checker.observe("ch", stamped)
        with pytest.raises(SanitizerViolation, match="FIFO violation"):
            checker.observe("ch", stamped)

    def test_channels_are_independent(self):
        checker = self._checker()
        a1 = checker.stamp("a")
        b1 = checker.stamp("b")
        checker.observe("b", b1)
        checker.observe("a", a1)  # no cross-channel ordering claim

    def test_new_generation_resets_ordering(self):
        """A relaunched Stream Manager starts fresh counters under a new
        incarnation; that must not read as a channel rewind."""
        checker = self._checker()
        checker.observe("ch", checker.stamp("ch", generation=1))
        checker._next.clear()  # the relaunch: counters restart at 1
        checker.observe("ch", checker.stamp("ch", generation=2))

    def test_reset_channels_forgets_state(self):
        checker = self._checker()
        stamped = checker.stamp("ch")
        checker.observe("ch", stamped)
        checker.reset_channels()
        checker.observe("ch", checker.stamp("ch"))  # seq 1 again: fine


# -- barrier alignment -------------------------------------------------------

class TestAlignment:
    def test_aligned_channel_data_is_a_violation(self):
        sani = KernelSanitizer()
        sani.check_alignment(instance_name="count-0", aligning=False,
                             channel=("word", 0), barriered=False,
                             checkpoint_id=1)
        sani.check_alignment(instance_name="count-0", aligning=True,
                             channel=("word", 1), barriered=False,
                             checkpoint_id=1)
        with pytest.raises(SanitizerViolation, match="alignment"):
            sani.check_alignment(instance_name="count-0", aligning=True,
                                 channel=("word", 0), barriered=True,
                                 checkpoint_id=1)
        assert sani.barrier_checks == 3


# -- end-to-end: the real topology under sanitize ----------------------------

class TestEndToEnd:
    def test_wordcount_clean_under_sanitize(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        cluster = HeronCluster.local(seed=7)
        assert cluster.sim.sanitizer is not None
        handle = cluster.submit_topology(
            wordcount_topology(2, corpus_size=500))
        handle.wait_until_running()
        cluster.run_for(1.0)
        report = cluster.sim.sanitizer.report()
        assert report["violations"] == []
        assert report["pops"] > 100
        assert report["fifo_stamped"] > 0
        assert report["fifo_observed"] > 0
        assert handle.totals()["emitted"] > 0

    def test_trace_records_pops(self):
        sim = Simulator(sanitize=True)
        sim.sanitizer.enable_trace(3)
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run_until(10.0)
        trace = sim.sanitizer.trace
        assert len(trace) == 3
        assert [row[0] for row in trace] == [0.0, 1.0, 2.0]
        assert all(row[1] > 0 for row in trace)  # abs(seq)
