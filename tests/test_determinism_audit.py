"""Seeded-RNG audit: same root seed => bit-identical simulations.

Each workload is built and run twice from the same seed with the
sanitizer's event trace enabled; the first few thousand kernel pops
(time, seq, callback qualname) and the end-of-run totals must match
exactly. Any divergence means some code path consumed wall-clock time,
OS entropy, or hash-ordered iteration — precisely what rules D001–D003
and the sanitizer exist to prevent.
"""

from __future__ import annotations

import pytest

from repro.core.heron import HeronCluster

TRACE_LIMIT = 3000


def _run_wordcount(seed):
    from repro.workloads.wordcount import wordcount_topology
    cluster = HeronCluster.local(seed=seed)
    cluster.sim.sanitizer.enable_trace(TRACE_LIMIT)
    handle = cluster.submit_topology(wordcount_topology(2, corpus_size=500))
    handle.wait_until_running()
    cluster.run_for(1.0)
    return cluster.sim.sanitizer.trace, handle.totals()


def _run_stateful_wordcount(seed):
    from repro.api.config_keys import TopologyConfigKeys as Keys
    from repro.common.config import Config
    from repro.workloads.stateful_wordcount import stateful_wordcount_topology
    cfg = (Config()
           .set(Keys.CHECKPOINT_ENABLED, True)
           .set(Keys.CHECKPOINT_INTERVAL_SECS, 0.5))
    cluster = HeronCluster.local(seed=seed)
    cluster.sim.sanitizer.enable_trace(TRACE_LIMIT)
    handle = cluster.submit_topology(
        stateful_wordcount_topology(2, rate=200.0, corpus_size=500,
                                    config=cfg))
    handle.wait_until_running()
    cluster.run_for(1.5)
    return cluster.sim.sanitizer.trace, handle.totals()


def _run_chaos_wordcount(seed):
    from repro.api.config_keys import TopologyConfigKeys as Keys
    from repro.chaos import FaultPlan, LinkFaults
    from repro.common.config import Config
    from repro.workloads.wordcount import wordcount_topology
    plan = FaultPlan(link=LinkFaults(drop_rate=0.02, spike_rate=0.05,
                                     spike_latency=0.005))
    # Multiple machines => real SM↔SM traffic for the faults to chew on.
    cluster = HeronCluster.on_yarn(machines=4, seed=seed, fault_plan=plan)
    cluster.sim.sanitizer.enable_trace(TRACE_LIMIT)
    cfg = (Config().set(Keys.BATCH_SIZE, 100)
                   .set(Keys.INSTANCES_PER_CONTAINER, 2))
    handle = cluster.submit_topology(
        wordcount_topology(2, corpus_size=500, config=cfg))
    handle.wait_until_running()
    cluster.run_for(1.0)
    return cluster.sim.sanitizer.trace, (handle.totals(),
                                         cluster.chaos_stats(),
                                         handle.failure_stats())


def _run_kafka_redis(seed):
    from repro.workloads.kafka_redis import kafka_redis_topology
    topology, _broker, redis = kafka_redis_topology(
        events_per_min=6e4, spouts=2, filters=2, aggregators=2, sinks=1)
    cluster = HeronCluster.local(seed=seed)
    cluster.sim.sanitizer.enable_trace(TRACE_LIMIT)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    cluster.run_for(1.0)
    return cluster.sim.sanitizer.trace, (handle.totals(), redis.writes)


WORKLOADS = {
    "wordcount": _run_wordcount,
    "stateful_wordcount": _run_stateful_wordcount,
    "kafka_redis": _run_kafka_redis,
    "chaos_wordcount": _run_chaos_wordcount,
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_same_seed_same_trace(workload, monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    runner = WORKLOADS[workload]
    trace_a, outcome_a = runner(seed=1234)
    trace_b, outcome_b = runner(seed=1234)
    assert len(trace_a) > 0
    assert trace_a == trace_b
    assert outcome_a == outcome_b


def test_different_seeds_diverge(monkeypatch):
    """The seed must actually matter: different seeds => different
    emission contents (guards against a silently ignored seed)."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    _trace_a, outcome_a = _run_wordcount(seed=1)
    _trace_b, outcome_b = _run_wordcount(seed=2)
    # Totals may coincide (rates are seed-independent), so check the
    # word streams the spout's per-task RNG would sample.
    import random

    def words(seed, n=50):
        rng = random.Random((seed << 16) ^ 0)  # WordSpout.open's seeding
        return [rng.randrange(500) for _ in range(n)]

    assert words(1) != words(2)
    assert outcome_a["emitted"] > 0 and outcome_b["emitted"] > 0


def test_chaos_seeds_diverge(monkeypatch):
    """Different seeds must draw different fault sequences (the chaos
    RNG rides the same registry as everything else)."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    _trace_a, outcome_a = _run_chaos_wordcount(seed=1)
    _trace_b, outcome_b = _run_chaos_wordcount(seed=2)
    chaos_a, chaos_b = outcome_a[1], outcome_b[1]
    assert chaos_a["drops"] > 0 and chaos_b["drops"] > 0
    assert chaos_a != chaos_b
