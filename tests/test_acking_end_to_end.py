"""End-to-end acking semantics across both engines: fan-out trees,
explicit fails, and timeout expiry."""

import pytest

from repro.api.component import Bolt, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.topology import TopologyBuilder
from repro.baselines.storm.cluster import StormCluster
from repro.baselines.storm.config_keys import StormConfigKeys as StormKeys
from repro.core.heron import HeronCluster


class NumberSpout(Spout):
    outputs = {"default": ["n"]}

    def open(self, context, collector):
        self._next = context.task_id * 1_000_000

    def next_tuple(self, collector):
        collector.emit([self._next])
        self._next += 1


class SplitBolt(Bolt):
    outputs = {"default": ["n"]}

    def execute(self, tup, collector):
        collector.emit([tup[0] * 2])
        collector.emit([tup[0] * 2 + 1])


class FailEverythingBolt(Bolt):
    def execute(self, tup, collector):
        collector.fail(tup)


class SinkBolt(Bolt):
    def execute(self, tup, collector):
        pass


def pipeline(middle_cls, sink_cls=SinkBolt):
    builder = TopologyBuilder("pipeline")
    builder.set_spout("numbers", NumberSpout(), parallelism=2)
    builder.set_bolt("middle", middle_cls(), parallelism=2) \
        .shuffle_grouping("numbers")
    builder.set_bolt("sink", sink_cls(), parallelism=2) \
        .shuffle_grouping("middle")
    builder.set_config(Keys.BATCH_SIZE, 20)
    builder.set_config(Keys.ACKING_ENABLED, True)
    builder.set_config(Keys.ACK_TRACKING, "exact")
    builder.set_config(Keys.MAX_SPOUT_PENDING, 100)
    return builder


class TestStormExactTrees:
    def submit(self, middle_cls):
        cluster = StormCluster(supervisors=2)
        builder = pipeline(middle_cls)
        builder.set_config(StormKeys.TRANSFER_FLUSH_MS, 2.0)
        handle = cluster.submit_topology(builder.build())
        return cluster, handle

    def test_fanout_tree_fully_acked(self):
        cluster, handle = self.submit(SplitBolt)
        cluster.run_for(2.0)
        totals = handle.totals()
        assert totals["acked"] > 0
        assert totals["failed"] == 0
        snapshot = handle.snapshot()
        assert snapshot["sink"]["executed"] == pytest.approx(
            2 * snapshot["middle"]["executed"], rel=0.1)

    def test_explicit_fail_reaches_spout(self):
        cluster, handle = self.submit(FailEverythingBolt)
        cluster.run_for(2.0)
        totals = handle.totals()
        assert totals["failed"] > 0
        assert totals["acked"] == 0


class TestHeronTimeoutExpiry:
    def test_unacked_roots_expire_via_rotation(self):
        """Kill the sinks: trees never complete; the SM's rotating
        timeout wheel fails them after ~message_timeout."""
        cluster = HeronCluster.local()
        builder = pipeline(SplitBolt)
        builder.set_config(Keys.MESSAGE_TIMEOUT_SECS, 1.0)
        handle = cluster.submit_topology(builder.build())
        handle.wait_until_running()
        cluster.run_for(0.3)
        for key, inst in list(handle._runtime.instances.items()):
            if key[0] == "sink":
                inst.kill()
        cluster.run_for(4.0)
        totals = handle.totals()
        assert totals["failed"] > 0

    def test_spout_fail_callback_invoked_on_expiry(self):
        fails = []

        class TrackingSpout(NumberSpout):
            def fail(self, tuple_id):
                fails.append(tuple_id)

        cluster = HeronCluster.local()
        builder = TopologyBuilder("t")
        builder.set_spout("numbers", TrackingSpout(), parallelism=1)
        builder.set_bolt("sink", FailEverythingBolt(), parallelism=1) \
            .shuffle_grouping("numbers")
        builder.set_config(Keys.BATCH_SIZE, 10)
        builder.set_config(Keys.ACKING_ENABLED, True)
        builder.set_config(Keys.ACK_TRACKING, "exact")
        builder.set_config(Keys.MAX_SPOUT_PENDING, 50)
        handle = cluster.submit_topology(builder.build())
        handle.wait_until_running()
        cluster.run_for(1.0)
        assert fails
        assert all(tuple_id > 0 for tuple_id in fails)


class TestCountedVsExactThroughputAgreement:
    def test_single_hop_counts_agree(self):
        """For WordCount-like single-hop flows, counted and exact modes
        must agree on acked totals within a small tolerance."""
        from repro.workloads.wordcount import wordcount_topology
        from repro.common.config import Config

        results = {}
        for mode in ("exact", "counted"):
            cfg = Config()
            cfg.set(Keys.BATCH_SIZE, 50)
            cfg.set(Keys.ACKING_ENABLED, True)
            cfg.set(Keys.ACK_TRACKING, mode)
            cfg.set(Keys.MAX_SPOUT_PENDING, 300)
            cluster = HeronCluster.local()
            handle = cluster.submit_topology(
                wordcount_topology(2, corpus_size=500, config=cfg))
            handle.wait_until_running()
            cluster.run_for(1.5)
            totals = handle.totals()
            results[mode] = totals
            assert totals["failed"] == 0
        ratio = results["exact"]["acked"] / results["counted"]["acked"]
        assert 0.5 < ratio < 2.0
