"""SM → TM heartbeats: liveness tracking on the control plane."""

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.workloads.wordcount import wordcount_topology


def launch(parallelism=3, detection=True):
    cfg = Config().set(Keys.BATCH_SIZE, 50) \
                  .set(Keys.FAILURE_DETECTION_ENABLED, detection)
    cluster = HeronCluster.local()
    handle = cluster.submit_topology(
        wordcount_topology(parallelism, corpus_size=300, config=cfg))
    handle.wait_until_running()
    return cluster, handle


class TestHeartbeats:
    def test_every_sm_heartbeats(self):
        cluster, handle = launch()
        cluster.run_for(7.0)
        tmaster = handle._runtime.tmaster
        expected = {sm.name for sm in handle._runtime.sms.values()}
        assert set(tmaster.last_heartbeat) == expected

    def test_heartbeats_are_fresh(self):
        cluster, handle = launch()
        cluster.run_for(10.0)
        tmaster = handle._runtime.tmaster
        assert tmaster.stale_stmgrs(max_age=5.0) == []

    def test_dead_sm_goes_stale(self):
        # Detection off: the passive stale list keeps the entry around
        # for external monitors instead of acting on it.
        cluster, handle = launch(detection=False)
        cluster.run_for(4.0)
        victim = next(iter(handle._runtime.sms.values()))
        victim.kill()
        cluster.run_for(15.0)
        tmaster = handle._runtime.tmaster
        assert victim.name in tmaster.stale_stmgrs(max_age=10.0)

    def test_detection_relaunches_dead_sm(self):
        # Detection on (the default): the TM declares the silent SM dead
        # after the miss window and asks the runtime for a relaunch.
        cluster, handle = launch()
        cluster.run_for(4.0)
        runtime = handle._runtime
        victim_cid, victim = next(iter(runtime.sms.items()))
        victim.kill()
        cluster.run_for(15.0)
        tmaster = runtime.tmaster
        assert tmaster.suspected_failures >= 1
        assert tmaster.relaunches_requested >= 1
        replacement = runtime.sms[victim_cid]
        assert replacement is not victim and replacement.alive
        assert victim.name not in tmaster.stale_stmgrs(max_age=10.0)

    def test_sequences_increase(self):
        cluster, handle = launch()
        cluster.run_for(4.0)
        sm = next(iter(handle._runtime.sms.values()))
        first = sm._heartbeat_seq
        cluster.run_for(6.0)
        assert sm._heartbeat_seq > first
