"""Tests for the typed Config plumbing."""

import pytest

from repro.common.config import Config, ConfigKey, ConfigSchema
from repro.common.errors import ConfigError

KEY_INT = ConfigKey("test.int", default=7, value_type=int)
KEY_FLOAT = ConfigKey("test.float", default=1.5, value_type=float)
KEY_POSITIVE = ConfigKey("test.positive", default=1, value_type=int,
                         validator=lambda v: v > 0)
KEY_FREE = ConfigKey("test.free")


class TestConfigKey:
    def test_check_accepts_declared_type(self):
        assert KEY_INT.check(3) == 3

    def test_check_rejects_wrong_type(self):
        with pytest.raises(ConfigError):
            KEY_INT.check("three")

    def test_float_key_coerces_int(self):
        assert KEY_FLOAT.check(2) == 2.0
        assert isinstance(KEY_FLOAT.check(2), float)

    def test_float_key_rejects_bool(self):
        with pytest.raises(ConfigError):
            KEY_FLOAT.check(True)

    def test_validator_rejects(self):
        with pytest.raises(ConfigError):
            KEY_POSITIVE.check(0)

    def test_untyped_key_accepts_anything(self):
        assert KEY_FREE.check(object()) is not None


class TestConfig:
    def test_get_returns_key_default(self):
        assert Config().get(KEY_INT) == 7

    def test_set_then_get(self):
        cfg = Config().set(KEY_INT, 42)
        assert cfg.get(KEY_INT) == 42

    def test_set_validates(self):
        with pytest.raises(ConfigError):
            Config().set(KEY_POSITIVE, -1)

    def test_string_keys_allowed(self):
        cfg = Config().set("custom.key", "value")
        assert cfg.get("custom.key") == "value"
        assert "custom.key" in cfg

    def test_require_missing_raises(self):
        with pytest.raises(ConfigError):
            Config().require("absent.key")

    def test_require_present(self):
        assert Config().require(KEY_INT) == 7  # default counts

    def test_contains_with_key_object(self):
        cfg = Config().set(KEY_INT, 1)
        assert KEY_INT in cfg
        assert KEY_FLOAT not in cfg

    def test_with_overrides_does_not_mutate(self):
        base = Config().set(KEY_INT, 1)
        derived = base.with_overrides({KEY_INT.name: 2})
        assert base.get(KEY_INT) == 1
        assert derived.get(KEY_INT) == 2

    def test_update_from_config(self):
        first = Config().set("a", 1)
        second = Config().set("a", 2).set("b", 3)
        first.update(second)
        assert first.get("a") == 2
        assert first.get("b") == 3

    def test_iteration_is_sorted(self):
        cfg = Config().set("b", 2).set("a", 1)
        assert [name for name, _value in cfg] == ["a", "b"]

    def test_equality(self):
        assert Config({"a": 1}) == Config({"a": 1})
        assert Config({"a": 1}) != Config({"a": 2})

    def test_len_and_as_dict(self):
        cfg = Config({"a": 1, "b": 2})
        assert len(cfg) == 2
        assert cfg.as_dict() == {"a": 1, "b": 2}


class TestConfigSchema:
    def test_declare_and_defaults(self):
        schema = ConfigSchema("test")
        schema.declare(KEY_INT)
        schema.declare(KEY_FLOAT)
        defaults = schema.defaults()
        assert defaults.get(KEY_INT) == 7
        assert defaults.get(KEY_FLOAT) == 1.5

    def test_duplicate_declare_rejected(self):
        schema = ConfigSchema("test")
        schema.declare(KEY_INT)
        with pytest.raises(ConfigError):
            schema.declare(KEY_INT)

    def test_validate_checks_known_keys(self):
        schema = ConfigSchema("test")
        schema.declare(KEY_INT)
        bad = Config().set("test.int", "nope")  # bypasses key typing
        with pytest.raises(ConfigError):
            schema.validate(bad)

    def test_validate_ignores_unknown_keys(self):
        schema = ConfigSchema("test")
        schema.validate(Config().set("unknown", object()))
