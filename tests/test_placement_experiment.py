"""Tests for the placement experiment (repro.experiments.placement)."""

import pytest

from repro.experiments import placement
from repro.experiments.placement import (POLICIES, RSTORM,
                                         measure_policy, placement_config,
                                         sharded_pipeline_topology)
from repro.packing.rstorm import RStormPacking
from repro.simulation.cluster import Cluster


class TestTopologyShape:
    def test_shards_are_disjoint(self):
        topology = sharded_pipeline_topology(2)
        for bolt_name, spec in topology.bolts.items():
            shard = bolt_name[-1]
            for input_spec in spec.inputs:
                assert input_spec.component.endswith(shard)

    def test_stage_chain_per_shard(self):
        topology = sharded_pipeline_topology(3)
        assert len(topology.spouts) == 3
        assert len(topology.bolts) == 9  # filter + agg + sink per shard

    def test_total_cpu_matches_stage_table(self):
        topology = sharded_pipeline_topology(2)
        # 6 one-core instances per shard.
        assert topology.total_instances == 12


class TestPackingArithmetic:
    def test_rstorm_packs_one_shard_per_container(self):
        topology = sharded_pipeline_topology(3, placement_config())
        policy = RStormPacking()
        policy.initialize(placement_config(), topology)
        policy.bind_cluster(Cluster.racked(placement.RACKS, 2,
                                           placement.MACHINE))
        plan = policy.pack()
        assert plan.container_count == 3
        for container in plan.containers:
            shards = {i.component[-1] for i in container.instances}
            assert len(shards) == 1
            # 6 cpu contents + 1 padding fits an 8-core machine.
            assert container.required.cpu <= placement.MACHINE.cpu


@pytest.mark.slow
class TestMeasurement:
    def test_same_seed_point_is_byte_identical(self):
        first = measure_policy((RSTORM, True, 0))
        second = measure_policy((RSTORM, True, 1))
        assert first == second

    def test_policies_produce_valid_rows(self):
        row = measure_policy((POLICIES[0], True, 0))
        assert row["throughput_tps"] > 0
        assert 0.0 <= row["cross_rack_share"] <= 1.0
        assert row["total_messages"] > 0
        assert row["cores"] > 0
