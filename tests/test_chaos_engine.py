"""Unit tests for ``repro.chaos``: fault plans, the faulty network,
backoff policy, the flaky State Manager, and the control-plane retry
paths they exercise (TM advertise retry, backpressure leases,
corrupt-snapshot fallback)."""

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.chaos import (BackoffPolicy, FaultPlan, FaultyNetwork,
                         FlakyStateManager, LinkFaults, Partition,
                         Straggler)
from repro.checkpoint import CheckpointStore, encode_state
from repro.common.config import Config
from repro.common.errors import ConfigError, StateError
from repro.core.heron import HeronCluster
from repro.core.topology_master import TopologyMaster
from repro.simulation.actors import Location
from repro.simulation.costs import DEFAULT_COST_MODEL
from repro.simulation.events import Simulator
from repro.simulation.network import Network
from repro.simulation.rng import RngStream
from repro.statemgr.localfs import LocalFileSystemStateManager
from repro.statemgr.paths import TopologyPaths


class TestFaultPlanValidation:
    def test_drop_rate_bounds(self):
        with pytest.raises(ConfigError):
            LinkFaults(drop_rate=1.0)
        with pytest.raises(ConfigError):
            LinkFaults(drop_rate=-0.1)

    def test_partition_needs_machines(self):
        with pytest.raises(ConfigError):
            Partition(start=0.0, duration=1.0, machines=frozenset())

    def test_straggler_slowdown_at_least_one(self):
        with pytest.raises(ConfigError):
            Straggler(start=0.0, duration=1.0, slowdown=0.5,
                      containers=frozenset({1}))

    def test_partition_window(self):
        partition = Partition(start=1.0, duration=2.0,
                              machines=frozenset({3}))
        assert not partition.active(0.5)
        assert partition.active(1.0)
        assert partition.active(2.9)
        assert not partition.active(3.0)
        assert partition.separates(3, 4)
        assert not partition.separates(4, 5)
        assert not partition.separates(3, 3)


def _locations():
    return (Location.of(0, 1, 0), Location.of(1, 2, 0))


def _faulty(plan, now=0.0, seed=7):
    inner = Network(DEFAULT_COST_MODEL)
    return FaultyNetwork(inner, plan=plan, now=lambda: now,
                         rng=RngStream(seed, "chaos.network"))


class TestFaultyNetwork:
    def test_clean_plan_is_transparent(self):
        src, dst = _locations()
        inner = Network(DEFAULT_COST_MODEL)
        net = FaultyNetwork(inner, plan=FaultPlan(), now=lambda: 0.0,
                            rng=RngStream(7, "chaos.network"))
        assert net.latency(src, dst) == inner.latency(src, dst)
        assert net.stats()["drops"] == 0.0

    def test_drop_rate_drops_messages(self):
        src, dst = _locations()
        net = _faulty(FaultPlan(link=LinkFaults(drop_rate=0.5)))
        outcomes = [net.latency(src, dst) for _ in range(200)]
        dropped = sum(1 for o in outcomes if o is None)
        assert 0 < dropped < 200
        assert net.drops == dropped

    def test_same_seed_same_fault_sequence(self):
        src, dst = _locations()
        plan = FaultPlan(link=LinkFaults(drop_rate=0.3, spike_rate=0.2,
                                         spike_latency=0.01, jitter=0.1))
        seq_a = [_faulty(plan, seed=5).latency(src, dst)
                 for _ in range(1)]  # fresh nets: only first draw matters
        net_a, net_b = _faulty(plan, seed=5), _faulty(plan, seed=5)
        a = [net_a.latency(src, dst) for _ in range(300)]
        b = [net_b.latency(src, dst) for _ in range(300)]
        assert a == b
        assert net_a.stats() == net_b.stats()
        assert seq_a[0] == a[0]

    def test_different_seeds_diverge(self):
        src, dst = _locations()
        plan = FaultPlan(link=LinkFaults(drop_rate=0.3, jitter=0.2))
        a = [_faulty(plan, seed=1).latency(src, dst) for _ in range(1)]
        net_a, net_b = _faulty(plan, seed=1), _faulty(plan, seed=2)
        assert [net_a.latency(src, dst) for _ in range(100)] != \
               [net_b.latency(src, dst) for _ in range(100)]
        assert a  # seed-1 sequence is itself reproducible above

    def test_partition_blocks_cross_machine_only(self):
        src, dst = _locations()
        plan = FaultPlan(partitions=(Partition(
            start=0.0, duration=5.0, machines=frozenset({0})),))
        net = _faulty(plan, now=1.0)
        assert net.latency(src, dst) is None
        assert net.partition_drops == 1
        # Same machine, different containers: unaffected by the cut.
        assert net.latency(Location.of(0, 1, 0),
                           Location.of(0, 3, 0)) is not None

    def test_partition_expires(self):
        src, dst = _locations()
        plan = FaultPlan(partitions=(Partition(
            start=0.0, duration=5.0, machines=frozenset({0})),))
        net = _faulty(plan, now=6.0)
        assert net.latency(src, dst) is not None

    def test_straggler_inflates_latency(self):
        src, dst = _locations()
        plan = FaultPlan(stragglers=(Straggler(
            start=0.0, duration=5.0, slowdown=10.0,
            containers=frozenset({1})),))
        net = _faulty(plan, now=1.0)
        base = Network(DEFAULT_COST_MODEL).latency(src, dst)
        assert net.latency(src, dst) == pytest.approx(10.0 * base)
        assert net.straggler_hits == 1

    def test_intra_container_traffic_immune(self):
        plan = FaultPlan(link=LinkFaults(drop_rate=0.99))
        net = _faulty(plan)
        same = Location.of(0, 1, 0), Location.of(0, 1, 1)
        for _ in range(50):
            assert net.latency(*same) is not None
        assert net.drops == 0


class TestBackoffPolicy:
    def test_exponential_growth_to_cap(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=0.5, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(50) == pytest.approx(0.5)

    def test_jitter_stays_bounded(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=1.0, jitter=0.25)
        rng = RngStream(9, "backoff")
        for attempt in range(8):
            ideal = min(1.0, 0.1 * 2.0 ** attempt)
            delay = policy.delay(attempt, rng)
            assert 0.75 * ideal <= delay <= 1.25 * ideal

    def test_validation(self):
        with pytest.raises(ConfigError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ConfigError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ConfigError):
            BackoffPolicy(base=1.0, cap=0.5)
        with pytest.raises(ConfigError):
            BackoffPolicy(jitter=1.0)


class TestFlakyStateManager:
    def test_outage_window_fails_then_recovers(self):
        now = [0.0]
        flaky = FlakyStateManager(rng=RngStream(3, "flaky"),
                                  outages=((1.0, 2.0),),
                                  now=lambda: now[0])
        flaky.put("/a", b"x")  # before the outage: fine
        now[0] = 1.5
        with pytest.raises(StateError):
            flaky.get_data("/a")
        assert flaky.injected_failures == 1
        now[0] = 2.5
        assert flaky.get_data("/a") == b"x"

    def test_fail_rate_is_seeded(self):
        def failures(seed):
            flaky = FlakyStateManager(rng=RngStream(seed, "flaky"),
                                      fail_rate=0.5)
            count = 0
            for i in range(50):
                try:
                    flaky.put(f"/n{i}", b"x")
                except StateError:
                    count += 1
            return count

        assert failures(5) == failures(5)
        assert 0 < failures(5) < 50

    def test_tmaster_advertise_retries_through_outage(self):
        cluster = HeronCluster.local()
        from repro.workloads.wordcount import wordcount_topology
        handle = cluster.submit_topology(
            wordcount_topology(2, corpus_size=300))
        handle.wait_until_running()
        start = cluster.now
        flaky = FlakyStateManager(rng=RngStream(3, "flaky"),
                                  outages=((start, start + 0.4),),
                                  now=lambda: cluster.sim.now)
        tm = TopologyMaster(
            cluster.sim, location=Location.of(0, 99, 0),
            network=cluster.network, ledger=None, costs=cluster.costs,
            pplan=handle._runtime.pplan, statemgr=flaky,
            tmaster_path="/test/tmaster", rng=RngStream(4, "backoff"))
        tm.start()  # first attempt lands inside the outage
        cluster.run_for(2.0)
        assert tm.statemgr_retries >= 1
        assert flaky.injected_failures >= 1
        assert flaky.get_data("/test/tmaster") == tm.name.encode("utf-8")

    def test_tmaster_advertise_gives_up_eventually(self):
        cluster = HeronCluster.local()
        from repro.workloads.wordcount import wordcount_topology
        handle = cluster.submit_topology(
            wordcount_topology(2, corpus_size=300))
        handle.wait_until_running()
        flaky = FlakyStateManager(rng=RngStream(3, "flaky"),
                                  outages=((0.0, 1e9),),
                                  now=lambda: cluster.sim.now)
        tm = TopologyMaster(
            cluster.sim, location=Location.of(0, 99, 0),
            network=cluster.network, ledger=None, costs=cluster.costs,
            pplan=handle._runtime.pplan, statemgr=flaky,
            tmaster_path="/test/tmaster", rng=RngStream(4, "backoff"))
        tm.start()
        with pytest.raises(StateError):
            cluster.run_for(30.0)
        assert tm.statemgr_retries == tm.statemgr_attempts


class TestBackpressureLease:
    def _skewed_cluster(self):
        from repro.api.topology import TopologyBuilder
        from repro.workloads.wordcount import CountBolt, WordSpout

        builder = TopologyBuilder("skewed")
        builder.set_spout("word", WordSpout(500), parallelism=6)
        builder.set_bolt("count", CountBolt(), parallelism=1) \
            .fields_grouping("word", fields=["word"])
        builder.set_config(Keys.BATCH_SIZE, 50)
        builder.set_config(Keys.INSTANCES_PER_CONTAINER, 2)
        builder.set_config(Keys.FAILURE_DETECTION_ENABLED, False)
        cluster = HeronCluster.on_yarn(machines=6)
        handle = cluster.submit_topology(builder.build())
        handle.wait_until_running()
        return cluster, handle

    def test_lease_expires_when_initiator_dies(self):
        """Regression: an SM that dies mid-backpressure must not leave
        every spout paused forever — the pause lease expires and the
        survivors resume."""
        cluster, handle = self._skewed_cluster()
        deadline = cluster.now + 10.0
        initiator = None
        while cluster.now < deadline and initiator is None:
            cluster.run_for(0.25)
            for sm in handle._runtime.sms.values():
                if sm.in_backpressure:
                    initiator = sm
                    break
        assert initiator is not None, "backpressure never triggered"
        initiator.kill()  # silent death: no Resume is ever broadcast
        lease = float(Keys.BACKPRESSURE_LEASE_SECS.default)
        cluster.run_for(2.0 * lease + 1.0)
        stats = handle.failure_stats()
        assert stats["lease_expiries"] >= 1
        before = handle.totals()["emitted"]
        cluster.run_for(1.0)
        assert handle.totals()["emitted"] > before, \
            "spouts still paused after the initiator died"


class TestCorruptSnapshotFallback:
    def _store_with_two_checkpoints(self, statemgr):
        store = CheckpointStore(statemgr, "wc")
        store.commit(1, {("count", 1): encode_state({"a": 1})}, time=0.1)
        store.commit(2, {("count", 1): encode_state({"a": 2})}, time=0.2)
        return store

    def test_verify_detects_corruption(self, tmp_path):
        statemgr = LocalFileSystemStateManager(tmp_path / "state")
        store = self._store_with_two_checkpoints(statemgr)
        assert store.verify(2)
        path = TopologyPaths("wc").checkpoint_state(2, "count", 1)
        statemgr.set(path, b"garbage")
        assert not store.verify(2)
        assert store.verify(1)

    def test_rollback_falls_back_to_previous_checkpoint(self, tmp_path):
        statemgr = LocalFileSystemStateManager(tmp_path / "state")
        store = self._store_with_two_checkpoints(statemgr)
        path = TopologyPaths("wc").checkpoint_state(2, "count", 1)
        statemgr.set(path, b"garbage")
        assert store.latest_valid_id() == 1
        checkpoint_id, blobs = store.load_latest()
        assert checkpoint_id == 1
        assert blobs[("count", 1)] == encode_state({"a": 1})

    def test_missing_blob_fails_verification(self, tmp_path):
        statemgr = LocalFileSystemStateManager(tmp_path / "state")
        store = self._store_with_two_checkpoints(statemgr)
        statemgr.delete(TopologyPaths("wc").checkpoint_state(2, "count", 1))
        assert store.latest_valid_id() == 1

    def test_truncated_file_skipped_on_reload(self, tmp_path):
        root = tmp_path / "state"
        statemgr = LocalFileSystemStateManager(root)
        store = self._store_with_two_checkpoints(statemgr)
        assert store.latest_valid_id() == 2
        # Truncate the newest blob on disk mid-write (power loss).
        target = TopologyPaths("wc").checkpoint_state(2, "count", 1)
        file = statemgr._file_for(target)
        file.write_bytes(file.read_bytes()[:5])
        reloaded = LocalFileSystemStateManager(root)
        assert file in reloaded.corrupt_files
        restore = CheckpointStore(reloaded, "wc")
        assert restore.latest_valid_id() == 1
        checkpoint_id, blobs = restore.load_latest()
        assert checkpoint_id == 1
        assert blobs[("count", 1)] == encode_state({"a": 1})
