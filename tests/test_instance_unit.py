"""Focused Heron Instance behaviour tests."""

import pytest

from repro.api.component import Bolt, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.topology import TopologyBuilder
from repro.core.heron import HeronCluster
from repro.simulation.costs import CostCategory
from repro.workloads.wordcount import CountBolt, WordSpout


def build_cluster(topology):
    cluster = HeronCluster.local()
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    return cluster, handle


def wordcount(parallelism=2, **config_overrides):
    builder = TopologyBuilder("wc")
    builder.set_spout("word", WordSpout(500), parallelism)
    builder.set_bolt("count", CountBolt(), parallelism) \
        .fields_grouping("word", fields=["word"])
    builder.set_config(Keys.BATCH_SIZE, 50)
    for key, value in config_overrides.items():
        builder.set_config(getattr(Keys, key.upper()), value)
    return builder.build()


class TestUserObjectIsolation:
    def test_each_task_gets_its_own_user_object(self):
        cluster, handle = build_cluster(wordcount(parallelism=3))
        bolts = [inst.user for key, inst in
                 handle._runtime.instances.items() if key[0] == "count"]
        assert len({id(bolt) for bolt in bolts}) == 3
        # And none of them is the spec's original object.
        original = handle._runtime.topology.bolts["count"].bolt
        assert all(bolt is not original for bolt in bolts)

    def test_spout_open_called_once(self):
        opens = []

        class TrackingSpout(Spout):
            outputs = {"default": ["x"]}

            def open(self, context, collector):
                opens.append(context.task_id)

            def next_tuple(self, collector):
                collector.emit(["x"])

        builder = TopologyBuilder("t")
        builder.set_spout("s", TrackingSpout(), parallelism=2)
        builder.set_bolt("b", CountBolt(), parallelism=1) \
            .shuffle_grouping("s")
        cluster, handle = build_cluster(builder.build())
        cluster.run_for(0.2)
        assert sorted(opens) == [0, 1]

    def test_close_called_on_kill(self):
        closes = []

        class ClosingBolt(Bolt):
            def execute(self, tup, collector):
                pass

            def close(self):
                closes.append(1)

        builder = TopologyBuilder("t")
        builder.set_spout("s", WordSpout(100), parallelism=1)
        builder.set_bolt("b", ClosingBolt(), parallelism=2) \
            .shuffle_grouping("s")
        cluster, handle = build_cluster(builder.build())
        cluster.run_for(0.2)
        handle.kill()
        assert len(closes) == 2


class TestSampledAccounting:
    def test_sampled_counts_match_full_weight(self):
        cluster, handle = build_cluster(wordcount(sample_cap=8))
        cluster.run_for(0.5)
        totals = handle.totals()
        # Counted at full weight despite only 8 concrete values/batch.
        assert totals["executed"] > 1000
        bolt_counts = sum(
            sum(inst.user.counts.values())
            for key, inst in handle._runtime.instances.items()
            if key[0] == "count")
        assert bolt_counts == pytest.approx(totals["executed"], rel=0.01)


class TestUserCostCategories:
    def test_custom_category_charged(self):
        class ExpensiveSpout(Spout):
            outputs = {"default": ["x"]}
            user_cost_per_tuple = 5e-6
            charges_category = CostCategory.FETCH

            def next_tuple(self, collector):
                collector.emit(["x"])

        builder = TopologyBuilder("t")
        builder.set_spout("s", ExpensiveSpout(), parallelism=1)
        builder.set_bolt("b", CountBolt(), parallelism=1) \
            .shuffle_grouping("s")
        builder.set_config(Keys.BATCH_SIZE, 50)
        cluster, handle = build_cluster(builder.build())
        cluster.run_for(0.3)
        assert cluster.ledger.by_category.get(CostCategory.FETCH, 0) > 0

    def test_user_category_for_plain_bolts(self):
        class WorkingBolt(Bolt):
            user_cost_per_tuple = 2e-6

            def execute(self, tup, collector):
                pass

        builder = TopologyBuilder("t")
        builder.set_spout("s", WordSpout(100), parallelism=1)
        builder.set_bolt("b", WorkingBolt(), parallelism=1) \
            .shuffle_grouping("s")
        builder.set_config(Keys.BATCH_SIZE, 50)
        cluster, handle = build_cluster(builder.build())
        cluster.run_for(0.3)
        assert cluster.ledger.by_category.get(CostCategory.USER, 0) > 0


class TestAckEdgeCases:
    def test_failed_acks_counted_as_failures(self):
        """Kill the bolts' container mid-run: outstanding tuples fail via
        the spout's stall timeout."""
        cluster, handle = build_cluster(wordcount(
            acking_enabled=True, ack_tracking="counted",
            max_spout_pending=200, message_timeout_secs=1.0))
        cluster.run_for(0.5)
        # Deactivate so no new tuples are emitted, then kill every bolt.
        handle.deactivate()
        for key, inst in list(handle._runtime.instances.items()):
            if key[0] == "count":
                inst.kill()
        cluster.run_for(0.1)
        # Reactivate: spouts fill their pending window, acks never come.
        handle.activate()
        cluster.run_for(3.0)
        assert handle.totals()["failed"] > 0

    def test_spout_resumes_after_stall_failure(self):
        cluster, handle = build_cluster(wordcount(
            acking_enabled=True, ack_tracking="counted",
            max_spout_pending=200, message_timeout_secs=1.0))
        cluster.run_for(0.5)
        for key, inst in list(handle._runtime.instances.items()):
            if key[0] == "count":
                inst.kill()
        cluster.run_for(3.0)
        before = handle.totals()["emitted"]
        cluster.run_for(2.0)
        # Still emitting (window resets after each stall timeout).
        assert handle.totals()["emitted"] > before

    def test_exact_mode_spout_callbacks_carry_tuple_ids(self):
        acked_ids = []

        class IdSpout(Spout):
            outputs = {"default": ["x"]}

            def next_tuple(self, collector):
                collector.emit(["x"])

            def ack(self, tuple_id):
                acked_ids.append(tuple_id)

        builder = TopologyBuilder("t")
        builder.set_spout("s", IdSpout(), parallelism=1)
        builder.set_bolt("b", CountBolt(), parallelism=1) \
            .shuffle_grouping("s")
        builder.set_config(Keys.BATCH_SIZE, 10)
        builder.set_config(Keys.ACKING_ENABLED, True)
        builder.set_config(Keys.ACK_TRACKING, "exact")
        builder.set_config(Keys.MAX_SPOUT_PENDING, 50)
        cluster, handle = build_cluster(builder.build())
        cluster.run_for(0.5)
        assert acked_ids
        assert all(tuple_id > 0 for tuple_id in acked_ids)
        assert len(set(acked_ids)) == len(acked_ids)  # no double acks
