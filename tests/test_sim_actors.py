"""Tests for the actor model: serialization of service, latency, ledger."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation.actors import (Actor, CostLedger, FunctionActor,
                                     Location)
from repro.simulation.costs import CostCategory
from repro.simulation.events import Simulator
from repro.simulation.network import UniformNetwork

LOC_A = Location(0, 0, 0)
LOC_B = Location(0, 0, 1)


def make_actor(sim, handler, *, latency=0.0, ledger=None, name="a",
               group="actor", speed=1.0, location=LOC_A):
    return FunctionActor(sim, name, location, network=UniformNetwork(latency),
                         handler=handler, ledger=ledger, group=group,
                         speed=speed)


class TestServiceSerialization:
    def test_one_message_at_a_time(self):
        """Two messages each costing 1s finish at t=1 and t=2."""
        sim = Simulator()
        done = []

        def handler(actor, msg):
            actor.charge(1.0)
            done.append((msg, actor.sim.now))

        actor = make_actor(sim, handler)
        actor.deliver("m1")
        actor.deliver("m2")
        # Handler runs at dequeue time; service occupies the actor after.
        sim.run_until(0.5)
        assert actor.busy
        assert actor.inbox_len == 1
        sim.run_until(1.5)
        assert len(done) == 2  # second started at t=1
        sim.run_until(3.0)
        assert not actor.busy

    def test_busy_time_accumulates(self):
        sim = Simulator()
        actor = make_actor(sim, lambda a, m: a.charge(0.5))
        for _ in range(4):
            actor.deliver("m")
        sim.run_until(10.0)
        assert actor.busy_time == pytest.approx(2.0)  # lint: allow[D005] exact by construction
        assert actor.messages_processed == 4

    def test_zero_cost_messages_process_immediately(self):
        sim = Simulator()
        seen = []
        actor = make_actor(sim, lambda a, m: seen.append(m))
        for i in range(100):
            actor.deliver(i)
        assert seen == list(range(100))
        assert not actor.busy

    def test_speed_scales_service_time(self):
        sim = Simulator()
        fast = make_actor(sim, lambda a, m: a.charge(1.0), speed=2.0)
        fast.deliver("m")
        sim.run_until(0.6)
        assert not fast.busy  # 1.0 / 2.0 = 0.5s service

    def test_contention_inflates_service_time(self):
        sim = Simulator()
        actor = make_actor(sim, lambda a, m: a.charge(1.0))
        actor.contention = 3.0
        actor.deliver("m")
        sim.run_until(2.9)
        assert actor.busy
        sim.run_until(3.1)
        assert not actor.busy


class TestSends:
    def test_send_inside_handler_released_at_completion(self):
        sim = Simulator()
        received_at = []

        sink = make_actor(sim, lambda a, m: received_at.append(sim.now),
                          name="sink", location=LOC_B)

        def handler(actor, msg):
            actor.charge(1.0)
            actor.send(sink, "fwd")

        src = make_actor(sim, handler, name="src")
        src.deliver("m")
        sim.run_until(0.5)
        assert received_at == []  # not yet: src still in service  # lint: allow[D005] exact by construction
        sim.run_until(2.0)
        assert received_at == [1.0]  # lint: allow[D005] exact by construction

    def test_send_outside_handler_goes_immediately(self):
        sim = Simulator()
        received_at = []
        sink = make_actor(sim, lambda a, m: received_at.append(sim.now))
        src = make_actor(sim, lambda a, m: None, name="src")
        src.send(sink, "direct")
        sim.run_until(1.0)
        assert received_at == [0.0]  # lint: allow[D005] exact by construction

    def test_network_latency_applied(self):
        sim = Simulator()
        received_at = []
        sink = make_actor(sim, lambda a, m: received_at.append(sim.now),
                          latency=0.25)
        src = make_actor(sim, lambda a, m: None, latency=0.25)
        src.send(sink, "m")
        sim.run_until(1.0)
        assert received_at == [0.25]  # lint: allow[D005] exact by construction

    def test_extra_delay_adds_to_latency(self):
        sim = Simulator()
        received_at = []
        sink = make_actor(sim, lambda a, m: received_at.append(sim.now),
                          latency=0.25)
        src = make_actor(sim, lambda a, m: None, latency=0.25)
        src.send(sink, "m", extra_delay=0.5)
        sim.run_until(1.0)
        assert received_at == [0.75]  # lint: allow[D005] exact by construction


class TestLifecycle:
    def test_killed_actor_drops_messages(self):
        sim = Simulator()
        seen = []
        actor = make_actor(sim, lambda a, m: seen.append(m))
        actor.kill()
        actor.deliver("m")
        sim.run_until(1.0)
        assert seen == []
        assert not actor.alive

    def test_kill_cancels_in_flight_service_and_sends(self):
        sim = Simulator()
        received = []
        sink = make_actor(sim, lambda a, m: received.append(m), name="sink")

        def handler(actor, msg):
            actor.charge(1.0)
            actor.send(sink, "fwd")

        src = make_actor(sim, handler, name="src")
        src.deliver("m")
        sim.run_until(0.5)
        src.kill()
        sim.run_until(5.0)
        assert received == []  # buffered send never flushed

    def test_kill_stops_timers(self):
        sim = Simulator()
        ticks = []
        actor = make_actor(sim, lambda a, m: None)
        actor.every(1.0, lambda: ticks.append(sim.now))
        sim.run_until(2.5)
        actor.kill()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_on_killed_hook_runs(self):
        sim = Simulator()

        class Hooked(Actor):
            killed = False

            def on_message(self, message):
                pass

            def on_killed(self):
                self.killed = True

        actor = Hooked(sim, "h", LOC_A, network=UniformNetwork())
        actor.kill()
        assert actor.killed

    def test_invalid_speed_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            make_actor(sim, lambda a, m: None, speed=0.0)


class TestLedger:
    def test_charges_attributed_by_category_and_group(self):
        sim = Simulator()
        ledger = CostLedger()

        def handler(actor, msg):
            actor.charge(0.6, CostCategory.USER)
            actor.charge(0.4, CostCategory.ENGINE)

        actor = make_actor(sim, handler, ledger=ledger, group="bolt")
        actor.deliver("m")
        sim.run_until(5.0)
        assert ledger.total == pytest.approx(1.0)
        assert ledger.by_category[CostCategory.USER] == pytest.approx(0.6)
        assert ledger.by_group["bolt"] == pytest.approx(1.0)
        assert ledger.fraction(CostCategory.ENGINE) == pytest.approx(0.4)

    def test_breakdown_sums_to_one(self):
        sim = Simulator()
        ledger = CostLedger()
        actor = make_actor(sim, lambda a, m: a.charge(1.0, "x"),
                           ledger=ledger)
        actor.deliver("m")
        sim.run_until(5.0)
        assert sum(ledger.breakdown().values()) == pytest.approx(1.0)

    def test_empty_ledger_fraction_is_zero(self):
        assert CostLedger().fraction("anything") == 0.0

    def test_negative_charge_rejected(self):
        sim = Simulator()
        actor = make_actor(sim, lambda a, m: a.charge(-1.0))
        with pytest.raises(SimulationError):
            actor.deliver("m")


class TestQueueBuildup:
    def test_overloaded_actor_grows_queue(self):
        """Offered load 2x capacity: queue length grows linearly."""
        sim = Simulator()
        actor = make_actor(sim, lambda a, m: a.charge(0.01))
        sim.every(0.005, lambda: actor.deliver("m"))
        sim.run_until(2.0)
        # ~400 arrivals, ~200 served -> queue near 200
        assert 150 <= actor.inbox_len <= 250
