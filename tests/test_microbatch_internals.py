"""Micro-batch engine internals: partitioning, stage buffers, falling
behind."""

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.baselines.microbatch.engine import MicroBatchEngine
from repro.common.config import Config
from repro.workloads.wordcount import wordcount_topology


def make_engine(**kwargs):
    config = Config().set(Keys.SAMPLE_CAP, 32)
    topology = wordcount_topology(2, corpus_size=500, config=config)
    defaults = dict(batch_interval=0.2, input_rate=40_000.0,
                    executor_count=4)
    defaults.update(kwargs)
    return MicroBatchEngine(topology, **defaults)


class TestPartitioning:
    def test_partitions_conserve_count(self):
        engine = make_engine()
        tasks = engine._partition([["a"]] * 8, 1000, 500.0, batch_id=1,
                                  stage=0)
        assert sum(t.count for t in tasks) == 1000
        assert len(tasks) <= len(engine.executors)

    def test_small_batch_single_partition(self):
        engine = make_engine()
        tasks = engine._partition([["a"]], 1, 0.5, batch_id=1, stage=0)
        assert len(tasks) >= 1
        assert sum(t.count for t in tasks) == 1

    def test_arrival_time_distributed(self):
        engine = make_engine()
        tasks = engine._partition([["a"]] * 4, 100, 500.0, batch_id=1,
                                  stage=0)
        assert sum(t.arrival_time_sum for t in tasks) == \
            pytest.approx(500.0)


class TestFallingBehind:
    def test_overload_detected(self):
        engine = make_engine(input_rate=3_000_000.0, executor_count=1,
                             batch_interval=0.1)
        result = engine.run(3.0)
        assert result.fell_behind

    def test_moderate_load_keeps_up(self):
        engine = make_engine(input_rate=20_000.0)
        result = engine.run(3.0)
        assert not result.fell_behind


class TestBatchLifecycle:
    def test_in_flight_batches_bounded(self):
        engine = make_engine(input_rate=40_000.0)
        engine.run(2.05)  # just past a batch boundary
        # At most the newest batch may still be processing.
        assert len(engine._batches) <= 1
        open_ids = set(engine._batches)
        assert all(batch_id in open_ids
                   for batch_id, _stage in engine._stage_buffers)

    def test_batches_completed_counts(self):
        engine = make_engine(batch_interval=0.25)
        result = engine.run(2.1)
        assert 6 <= result.batches_completed <= 8

    def test_mean_latency_between_half_and_three_intervals(self):
        engine = make_engine(batch_interval=0.4, input_rate=20_000.0)
        result = engine.run(4.0)
        assert 0.2 <= result.mean_latency <= 1.2
