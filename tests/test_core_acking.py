"""Tests for XOR tuple-tree tracking and rotating timeouts."""

import pytest

from repro.core.acking import AckTracker, CountedTracker, RotatingMap, \
    RootEntry

SPOUT = ("word", 0)


class TestRotatingMap:
    def test_put_get(self):
        rmap = RotatingMap()
        entry = RootEntry(1, SPOUT, 0.0)
        rmap.put(1, entry)
        assert rmap.get(1) is entry
        assert len(rmap) == 1

    def test_rotate_expires_idle_entries(self):
        rmap = RotatingMap(buckets=3)
        rmap.put(1, RootEntry(1, SPOUT, 0.0))
        assert rmap.rotate() == []
        assert rmap.rotate() == []
        expired = rmap.rotate()
        assert [e.root for e in expired] == [1]
        assert rmap.get(1) is None

    def test_touch_resets_idle_clock(self):
        rmap = RotatingMap(buckets=3)
        rmap.put(1, RootEntry(1, SPOUT, 0.0))
        rmap.rotate()
        rmap.rotate()
        assert rmap.touch(1) is not None  # moved back to head
        assert rmap.rotate() == []
        assert rmap.rotate() == []
        assert [e.root for e in rmap.rotate()] == [1]

    def test_remove(self):
        rmap = RotatingMap()
        rmap.put(1, RootEntry(1, SPOUT, 0.0))
        assert rmap.remove(1).root == 1
        assert rmap.remove(1) is None
        assert len(rmap) == 0

    def test_put_replaces(self):
        rmap = RotatingMap()
        rmap.put(1, RootEntry(1, SPOUT, 0.0))
        rmap.put(1, RootEntry(1, SPOUT, 5.0))
        assert len(rmap) == 1
        assert rmap.get(1).emit_time == 5.0  # lint: allow[D005] exact by construction

    def test_too_few_buckets_rejected(self):
        with pytest.raises(ValueError):
            RotatingMap(buckets=1)


class TestAckTracker:
    def setup_method(self):
        self.completed = []
        self.expired = []
        self.tracker = AckTracker(self.completed.append,
                                  self.expired.append)

    def test_single_tuple_tree(self):
        """spout emits root 5 -> bolt acks 5 -> complete."""
        self.tracker.register(5, SPOUT, 1.0)
        self.tracker.update(5, 5)  # ack of the root tuple itself
        assert [e.root for e in self.completed] == [5]
        assert self.tracker.pending == 0

    def test_two_level_tree(self):
        """root 5 -> bolt emits 9 anchored to 5, acks 5 -> sink acks 9."""
        self.tracker.register(5, SPOUT, 1.0)
        self.tracker.update(5, 9)   # emission of child 9
        self.tracker.update(5, 5)   # ack of root tuple
        assert self.completed == []  # child still outstanding
        self.tracker.update(5, 9)   # ack of child
        assert [e.root for e in self.completed] == [5]

    def test_fanout_tree(self):
        """One root, three children, any ack order."""
        self.tracker.register(1, SPOUT, 0.0)
        for child in (10, 11, 12):
            self.tracker.update(1, child)  # emissions
        self.tracker.update(1, 1)          # root ack
        for child in (12, 10, 11):
            self.tracker.update(1, child)  # child acks
        assert [e.root for e in self.completed] == [1]

    def test_unknown_root_ignored(self):
        self.tracker.update(99, 1)
        assert self.completed == [] and self.expired == []

    def test_explicit_fail(self):
        self.tracker.register(5, SPOUT, 0.0)
        self.tracker.fail(5)
        assert [e.root for e in self.expired] == [5]
        # Late acks for the failed root are ignored.
        self.tracker.update(5, 5)
        assert self.completed == []

    def test_timeout_via_rotation(self):
        self.tracker.register(5, SPOUT, 0.0)
        assert self.tracker.rotate() == 0
        assert self.tracker.rotate() == 0
        assert self.tracker.rotate() == 1
        assert [e.root for e in self.expired] == [5]

    def test_active_tree_survives_rotation(self):
        self.tracker.register(5, SPOUT, 0.0)
        for i in range(6):
            self.tracker.rotate()
            child = 1000 + i
            self.tracker.update(5, child)  # emission touches the entry
            self.tracker.update(5, child)  # ack cancels it out
        assert self.expired == []
        self.tracker.update(5, 5)
        assert [e.root for e in self.completed] == [5]

    def test_many_independent_roots(self):
        for root in range(1, 101):
            self.tracker.register(root, SPOUT, 0.0)
        for root in range(1, 101):
            self.tracker.update(root, root)
        assert len(self.completed) == 100
        assert self.tracker.pending == 0


class TestCountedTracker:
    def test_emit_ack_cycle(self):
        tracker = CountedTracker(timeout=10.0)
        tracker.emitted(100, now=0.0)
        assert tracker.pending == 100
        assert tracker.acked(60, now=1.0) == 60
        assert tracker.pending == 40

    def test_ack_clipped_to_pending(self):
        tracker = CountedTracker(timeout=10.0)
        tracker.emitted(10, now=0.0)
        assert tracker.acked(25, now=1.0) == 10
        assert tracker.pending == 0

    def test_stall_detection(self):
        tracker = CountedTracker(timeout=10.0)
        tracker.emitted(50, now=0.0)
        assert tracker.check_stalled(now=5.0) == 0
        assert tracker.check_stalled(now=11.0) == 50
        assert tracker.pending == 0

    def test_progress_resets_stall_clock(self):
        tracker = CountedTracker(timeout=10.0)
        tracker.emitted(50, now=0.0)
        tracker.acked(10, now=8.0)
        assert tracker.check_stalled(now=12.0) == 0
        assert tracker.check_stalled(now=19.0) == 40
