"""Tests for tick tuples and the tumbling-window bolt."""

import pytest

from repro.api import (Bolt, Spout, TopologyBuilder, TumblingWindowBolt,
                       is_tick)
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.tuples import Batch, Tuple
from repro.core.heron import HeronCluster


class SteadySpout(Spout):
    outputs = {"default": ["n"]}

    def next_tuple(self, collector):
        collector.emit([1])


class WindowSum(TumblingWindowBolt):
    """Sums field 0 over 0.5s windows; emits one record per window."""

    window_seconds = 0.5
    outputs = {"default": ["total", "count"]}

    def __init__(self):
        super().__init__()
        self.window_records = []

    def process_window(self, window, collector):
        total = sum(t[0] for t in window.tuples)
        self.window_records.append((window.start, window.end,
                                    window.count))
        collector.emit([total, window.count])


class TickCounter(Bolt):
    tick_frequency = 0.25

    def __init__(self):
        super().__init__()
        self.ticks = 0
        self.data = 0

    def execute(self, tup, collector):
        if is_tick(tup):
            self.ticks += 1
        else:
            self.data += 1


def launch(bolt, parallelism=1, batch_size=20):
    builder = TopologyBuilder("windowed")
    builder.set_spout("src", SteadySpout(), parallelism=1)
    builder.set_bolt("win", bolt, parallelism=parallelism) \
        .shuffle_grouping("src")
    builder.set_config(Keys.BATCH_SIZE, batch_size)
    cluster = HeronCluster.local()
    handle = cluster.submit_topology(builder.build())
    handle.wait_until_running()
    return cluster, handle


class TestTickTuples:
    def test_ticks_delivered_at_frequency(self):
        cluster, handle = launch(TickCounter())
        cluster.run_for(2.0)
        bolt = handle._runtime.instances[("win", 0)].user
        assert 6 <= bolt.ticks <= 9  # ~2s / 0.25s, minus startup
        assert bolt.data > 0

    def test_no_ticks_without_frequency(self):
        class Plain(Bolt):
            def __init__(self):
                super().__init__()
                self.ticks = 0

            def execute(self, tup, collector):
                if is_tick(tup):
                    self.ticks += 1

        cluster, handle = launch(Plain())
        cluster.run_for(1.0)
        assert handle._runtime.instances[("win", 0)].user.ticks == 0

    def test_ticks_not_counted_as_executed(self):
        cluster, handle = launch(TickCounter())
        cluster.run_for(1.0)
        snapshot = handle.snapshot()
        bolt = handle._runtime.instances[("win", 0)].user
        assert snapshot["win"]["executed"] == bolt.data


class TestTumblingWindow:
    def test_windows_processed_on_schedule(self):
        cluster, handle = launch(WindowSum())
        cluster.run_for(2.6)
        bolt = handle._runtime.instances[("win", 0)].user
        assert 4 <= bolt.windows_processed <= 6

    def test_windows_partition_the_stream(self):
        cluster, handle = launch(WindowSum())
        cluster.run_for(2.6)
        bolt = handle._runtime.instances[("win", 0)].user
        records = bolt.window_records
        # Contiguous, non-overlapping windows.
        for (s1, e1, _c1), (s2, _e2, _c2) in zip(records, records[1:]):
            assert e1 == pytest.approx(s2)
            assert e1 - s1 == pytest.approx(0.5, abs=0.05)
        # Every tuple landed in exactly one window.
        windowed = sum(c for _s, _e, c in records)
        executed = handle.snapshot()["win"]["executed"]
        assert windowed <= executed
        assert windowed >= executed * 0.7  # tail still accumulating

    def test_window_emissions_flow_downstream(self):
        class Downstream(Bolt):
            def __init__(self):
                super().__init__()
                self.received = []

            def execute(self, tup, collector):
                self.received.append(tuple(tup.values))

        builder = TopologyBuilder("w2")
        builder.set_spout("src", SteadySpout(), parallelism=1)
        builder.set_bolt("win", WindowSum(), parallelism=1) \
            .shuffle_grouping("src")
        builder.set_bolt("down", Downstream(), parallelism=1) \
            .shuffle_grouping("win")
        builder.set_config(Keys.BATCH_SIZE, 20)
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(builder.build())
        handle.wait_until_running()
        cluster.run_for(2.0)
        down = handle._runtime.instances[("down", 0)].user
        assert len(down.received) >= 3
        for total, count in down.received:
            assert total == count  # every tuple's field is 1

    def test_batch_mode_accumulation(self):
        bolt = WindowSum()
        bolt._now = lambda: 1.0
        collector_calls = []
        bolt.process_window = lambda w, c: collector_calls.append(w)
        bolt.execute_batch(Batch(values=[[1], [1]], count=10), None)
        bolt.execute_batch(Batch(values=[[]], count=1, stream="__tick"),
                           None)
        assert len(collector_calls) == 1
        assert collector_calls[0].count == 10

    def test_invalid_window_rejected(self):
        class Bad(TumblingWindowBolt):
            window_seconds = 0.0

        with pytest.raises(ValueError):
            Bad()

    def test_process_window_required(self):
        class Incomplete(TumblingWindowBolt):
            window_seconds = 1.0

        bolt = Incomplete()
        with pytest.raises(NotImplementedError):
            bolt.execute(Tuple(values=[], stream="__tick"), None)
