"""Topology Master failover: epoch fencing, chaos faults, recovery.

The robustness PR's headline guarantees, pinned as tests:

* killing the TM process (or its whole machine, or expiring its State
  Manager session) mid-run relaunches the master in a fresh container
  with a higher **master epoch**, and an acked stateful WordCount still
  finishes with *exactly* the fault-free run's per-word counts — on a
  lossy network, with retransmits provably firing;
* the replacement master resumes checkpointing from the last committed
  snapshot and the whole faulty run replays byte-identically per seed;
* a fenced (stale-epoch) master's State Manager writes are rejected by
  the optimistic-version protocol, and Stream Managers drop its
  leftover control messages;
* a TM-initiated spout pause survives the failover durably: the
  successor reads the persisted execution state and re-asserts it.
"""

from collections import Counter

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.chaos import FaultPlan, LinkFaults, MasterFault
from repro.common.config import Config
from repro.common.errors import StateError
from repro.core.heron import HeronCluster
from repro.core.messages import NewPhysicalPlan, PauseSpouts
from repro.core.topology_master import TopologyMaster
from repro.simulation.actors import Location
from repro.statemgr.inmemory import InMemoryStateManager
from repro.workloads.stateful_wordcount import stateful_wordcount_topology
from repro.workloads.wordcount import wordcount_topology

SEED = 13
TUPLES_PER_TASK = 2000
RATE = 10_000.0
FAIL_AFTER = 0.5  # fault lands this long after the topology is running


def _failover_config() -> Config:
    # Small batches so a 1% link drop actually eats data messages (the
    # reliability suite's trick), fast checkpoints/heartbeats so the
    # successor has committed state to adopt within the run window.
    return (Config()
            .set(Keys.ACKING_ENABLED, True)
            .set(Keys.ACK_TRACKING, "counted")
            .set(Keys.BATCH_SIZE, 50)
            .set(Keys.SAMPLE_CAP, 0)
            .set(Keys.INSTANCES_PER_CONTAINER, 2)
            .set(Keys.CHECKPOINT_ENABLED, True)
            .set(Keys.CHECKPOINT_INTERVAL_SECS, 0.1)
            .set(Keys.HEARTBEAT_INTERVAL_SECS, 0.2))


def _run(fault_plan=None, master_fault_kind=None):
    """One bounded acked run; optionally kill the master mid-stream."""
    cluster = HeronCluster.on_yarn(machines=4, seed=SEED,
                                   fault_plan=fault_plan)
    topology = stateful_wordcount_topology(
        2, total_tuples=TUPLES_PER_TASK, rate=RATE,
        config=_failover_config())
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    fail_time = cluster.sim.now + FAIL_AFTER
    if master_fault_kind is not None:
        handle.inject_master_fault(
            MasterFault(at=fail_time, kind=master_fault_kind))
    cluster.run_for(8.0)
    counts: Counter = Counter()
    for (component, _task), inst in handle._runtime.instances.items():
        if component == "count":
            counts.update(inst.user.counts)
    return {"counts": dict(counts), "totals": handle.totals(),
            "failure_stats": handle.failure_stats(),
            "checkpoint_stats": handle.checkpoint_stats(),
            "fault_stats": handle.master_fault_stats(),
            "fail_time": fail_time,
            "tmaster": handle._runtime.tmaster}


_memo = {}


def _cached_run(key, fault_plan=None, master_fault_kind=None):
    if key not in _memo:
        _memo[key] = _run(fault_plan, master_fault_kind)
    return _memo[key]


def _clean():
    return _cached_run("clean")


def _killed():
    return _cached_run("kill", FaultPlan(link=LinkFaults(drop_rate=0.01)),
                       "kill-process")


class TestMasterKillEndToEnd:
    def test_counts_identical_despite_master_kill_and_drops(self):
        clean, killed = _clean(), _killed()
        failures = killed["failure_stats"]
        assert killed["fault_stats"]["injected[kill-process]"] == 1
        assert failures["tm_failovers"] == 1
        assert failures["master_epoch"] == 2
        assert failures["retransmits"] > 0, "drops were never repaired"
        assert killed["counts"] == clean["counts"]
        assert killed["totals"]["executed"] == clean["totals"]["executed"]
        assert killed["totals"]["acked"] == clean["totals"]["acked"]

    def test_failover_timing_and_successor_liveness(self):
        killed = _killed()
        failures = killed["failure_stats"]
        assert failures["last_failover_at"] >= killed["fail_time"]
        successor = killed["tmaster"]
        assert successor.alive
        assert successor.master_epoch == 2
        assert successor.first_broadcast_at is not None
        assert successor.first_broadcast_at > killed["fail_time"]

    def test_checkpointing_resumes_under_successor(self):
        killed = _killed()
        stats = killed["checkpoint_stats"]
        assert stats["committed"] > 0
        # The replacement coordinator kept committing after the kill.
        assert stats["last_commit_at"] > killed["fail_time"]

    def test_deterministic_across_same_seed_runs(self):
        killed = _killed()
        replay = _run(FaultPlan(link=LinkFaults(drop_rate=0.01)),
                      "kill-process")
        assert replay["counts"] == killed["counts"]
        assert replay["failure_stats"] == killed["failure_stats"]
        assert replay["totals"] == killed["totals"]

    def test_sanitized_run_is_clean_and_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitized = _run(FaultPlan(link=LinkFaults(drop_rate=0.01)),
                         "kill-process")
        assert sanitized["counts"] == _killed()["counts"]


class TestMasterFaultKinds:
    """Every TM fault kind recovers (or survives) without losing data."""

    def test_kill_machine(self):
        result = _run(FaultPlan(link=LinkFaults(drop_rate=0.01)),
                      "kill-machine")
        assert result["fault_stats"]["injected[kill-machine]"] == 1
        assert result["failure_stats"]["tm_failovers"] >= 1
        assert result["failure_stats"]["master_epoch"] == 2
        assert result["counts"] == _clean()["counts"]

    def test_expire_session(self):
        result = _run(master_fault_kind="expire-session")
        assert result["fault_stats"]["injected[expire-session]"] == 1
        # The ephemeral vanished, the engine relaunched, the successor
        # fenced the (still-running) old master by claiming epoch 2.
        assert result["failure_stats"]["tm_failovers"] == 1
        assert result["failure_stats"]["master_epoch"] == 2
        assert result["counts"] == _clean()["counts"]

    def test_partition_machine_is_survivable_without_failover(self):
        # An (empty) fault plan installs the chaos controller the
        # partition hook needs; the fault itself is armed via the handle.
        result = _run(FaultPlan(), master_fault_kind="partition-machine")
        assert result["fault_stats"]["injected[partition-machine]"] == 1
        # A partition does not delete the ephemeral node (the session
        # outlives a 1s network blip), so no failover — but the
        # topology must still finish complete once the partition heals.
        assert result["failure_stats"]["tm_failovers"] == 0
        assert result["counts"] == _clean()["counts"]


class TestHandleDuringFailover:
    def test_wait_until_running_survives_failover_window(self):
        cluster = HeronCluster.on_yarn(machines=4, seed=SEED)
        topology = stateful_wordcount_topology(
            2, total_tuples=TUPLES_PER_TASK, rate=RATE,
            config=_failover_config())
        handle = cluster.submit_topology(topology)
        handle.wait_until_running()
        # Kill the master, then immediately wait again: the poll must
        # ride out the window where runtime.tmaster is dead/replaced.
        handle.inject_master_fault(
            MasterFault(at=cluster.sim.now + 0.05, kind="kill-process"))
        cluster.run_for(0.1)  # master is now dead, successor pending
        assert not handle._runtime.tmaster.alive
        handle.wait_until_running()
        assert handle._runtime.tmaster.alive
        assert handle.failure_stats()["tm_failovers"] == 1

    def test_stats_reflect_successor_view(self):
        killed = _killed()
        # checkpoint_stats()/failure_stats() above came from the handle
        # post-failover; the continuity counters prove they describe
        # one logical control plane, not a reset successor.
        assert killed["checkpoint_stats"]["committed"] > 2
        assert killed["failure_stats"]["tm_pause_expiries"] >= 0


class TestDurablePauseAcrossFailover:
    def test_successor_reasserts_persisted_pause(self):
        cluster = HeronCluster.on_yarn(machines=4, seed=SEED)
        topology = stateful_wordcount_topology(
            2, total_tuples=200_000, rate=RATE,
            config=_failover_config())
        handle = cluster.submit_topology(topology)
        handle.wait_until_running()
        handle.deactivate()
        cluster.run_for(1.0)
        paused_emitted = handle.totals()["emitted"]
        handle.inject_master_fault(
            MasterFault(at=cluster.sim.now + 0.1, kind="kill-process"))
        cluster.run_for(2.0)
        successor = handle._runtime.tmaster
        assert successor.alive and successor.master_epoch == 2
        # It read b"PAUSED" from the execution state and stayed paused.
        assert not successor.activated
        sms = list(handle._runtime.sms.values())
        assert all(sm._tm_paused for sm in sms)
        # The dead master's pause expired on the DELETED watch, then the
        # successor re-asserted it — both sides of the protocol fired.
        assert handle.failure_stats()["tm_pause_expiries"] >= 1
        # Reactivating through the successor resumes the spouts.
        handle.activate()
        cluster.run_for(1.0)
        assert handle.totals()["emitted"] > paused_emitted


class TestEpochFencing:
    """The stale master is provably rejected, layer by layer."""

    def _bare_tm(self, cluster, pplan, statemgr, container=90):
        return TopologyMaster(
            cluster.sim, location=Location.of(0, container, 0),
            network=cluster.network, ledger=None, costs=cluster.costs,
            pplan=pplan, statemgr=statemgr,
            tmaster_path="/test/tmaster", epoch_path="/test/masterepoch",
            execution_state_path="/test/executionstate")

    def _cluster_and_plan(self):
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(
            wordcount_topology(2, corpus_size=300))
        handle.wait_until_running()
        return cluster, handle._runtime.pplan

    def test_stale_epoch_write_rejected_by_statemgr(self):
        cluster, pplan = self._cluster_and_plan()
        statemgr = InMemoryStateManager()
        old = self._bare_tm(cluster, pplan, statemgr, container=90)
        old.start()
        cluster.run_for(0.5)
        assert old.master_epoch == 1
        # The old master's session expires; a successor claims epoch 2.
        epoch, stale_version = old._read_epoch()
        old.session.expire()
        new = self._bare_tm(cluster, pplan, statemgr, container=91)
        new.start()
        cluster.run_for(0.5)
        assert new.master_epoch == 2
        # The fenced master retries its claim with the stale version:
        # the optimistic-version write MUST be rejected.
        with pytest.raises(StateError):
            old._write_epoch(epoch + 1, stale_version)
        assert old.fenced_writes == 1

    def test_fenced_master_cannot_persist_activation(self):
        cluster, pplan = self._cluster_and_plan()
        statemgr = InMemoryStateManager()
        statemgr.put("/test/executionstate", b"RUNNING")
        old = self._bare_tm(cluster, pplan, statemgr, container=90)
        old.start()
        cluster.run_for(0.5)
        old.session.expire()
        new = self._bare_tm(cluster, pplan, statemgr, container=91)
        new.start()
        cluster.run_for(0.5)
        # The stale master tries to flip the durable activation state:
        # the epoch guard drops the write before it reaches the store.
        old.activated = False
        old._persist_activation()
        assert old.fenced_writes == 1
        assert statemgr.get_data("/test/executionstate") == b"RUNNING"

    def test_sm_drops_stale_plan_broadcast(self):
        cluster = HeronCluster.on_yarn(machines=4, seed=SEED)
        handle = cluster.submit_topology(stateful_wordcount_topology(
            2, total_tuples=200, rate=RATE, config=_failover_config()))
        handle.wait_until_running()
        sm = next(iter(handle._runtime.sms.values()))
        assert sm.master_epoch == 1
        before_plan = sm.pplan
        sm._handle_new_plan(NewPhysicalPlan(
            pplan=object(), stmgr_directory={}, master_epoch=0))
        assert sm.fenced_drops == 1
        assert sm.pplan is before_plan
        assert sm.master_epoch == 1

    def test_sm_drops_stale_tm_pause(self):
        cluster = HeronCluster.on_yarn(machines=4, seed=SEED)
        handle = cluster.submit_topology(stateful_wordcount_topology(
            2, total_tuples=200, rate=RATE, config=_failover_config()))
        handle.wait_until_running()
        sm = next(iter(handle._runtime.sms.values()))
        assert not sm._tm_paused
        sm._handle_pause_resume(PauseSpouts(0, master_epoch=0))
        assert sm.fenced_drops == 1
        assert not sm._tm_paused
        # An equal-or-newer epoch is honoured.
        sm._handle_pause_resume(PauseSpouts(0, master_epoch=2))
        assert sm._tm_paused
        assert sm.master_epoch == 2
