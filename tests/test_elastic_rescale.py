"""E2E elasticity: live rescales preserve effectively-once counts.

The acceptance bar of the ``repro.autoscale`` subsystem: a stateful
WordCount whose ``count`` bolt is rescaled 2 → 6 → 3 mid-run — under a
1% chaos message-drop plan — must finish with final word counts
byte-identical to the same bounded stream run at a fixed shape. Each
rescale is a full checkpoint → repack → key-group re-partition →
restore round trip, and the chaos drops force the reliable channels and
rollback machinery to do real work along the way.
"""

from collections import Counter

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.autoscale import AutoscaleConfigKeys as AKeys
from repro.chaos import FaultPlan, LinkFaults
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.workloads.elastic import elastic_wordcount_topology

SEED = 23
TOTAL_TUPLES = 3_000  # per spout task; bounded so the stream drains
RATE = 5_000.0


def _config():
    return (Config()
            .set(Keys.ACKING_ENABLED, False)
            .set(Keys.BATCH_SIZE, 50)
            .set(Keys.SAMPLE_CAP, 0)
            .set(Keys.INSTANCES_PER_CONTAINER, 2)
            .set(Keys.CHECKPOINT_ENABLED, True)
            .set(Keys.CHECKPOINT_INTERVAL_SECS, 0.1))


def _counts(handle) -> Counter:
    counts = Counter()
    for (component, _task), inst in handle._runtime.instances.items():
        if component == "count":
            counts.update(inst.user.counts)
    return counts


def _run(rescales, *, counts=2, drop_rate=0.0, run_secs=3.0):
    """One bounded run; ``rescales`` is [(time, target_parallelism)]."""
    plan = FaultPlan(link=LinkFaults(drop_rate=drop_rate)) \
        if drop_rate else None
    cluster = HeronCluster.on_yarn(machines=4, seed=SEED,
                                   fault_plan=plan)
    topology = elastic_wordcount_topology(
        2, counts, schedule=[(0.0, RATE)], total_tuples=TOTAL_TUPLES,
        config=_config())
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    now = 0.0
    for at, target in sorted(rescales):
        cluster.run_for(at - now)
        handle.rescale({"count": target})
        now = at
    cluster.run_for(run_secs - now)
    result = (_counts(handle),
              sorted(handle.physical_plan.task_ids["count"]),
              handle.checkpoint_stats())
    handle.kill()
    return result


@pytest.fixture(scope="module")
def fixed_run():
    """The reference: same bounded stream, never rescaled."""
    return _run([], counts=2)


class TestLiveRescale:
    def test_scale_up_then_down_preserves_counts(self, fixed_run):
        counts, tasks, stats = _run([(0.4, 6), (1.2, 3)])
        assert tasks == [0, 1, 2]
        assert stats["restores"] >= 2
        assert counts == fixed_run[0]
        assert sum(counts.values()) == 2 * TOTAL_TUPLES

    def test_rescale_under_chaos_drops_is_effectively_once(self,
                                                           fixed_run):
        """1% message drops during both rescales: the reliable channels
        retransmit and the rollbacks replay; counts still match."""
        counts, tasks, stats = _run([(0.4, 6), (1.2, 3)],
                                    drop_rate=0.01, run_secs=4.0)
        assert tasks == [0, 1, 2]
        assert stats["restores"] >= 2
        assert counts == fixed_run[0]

    def test_scale_down_to_one_task_merges_all_groups(self, fixed_run):
        counts, tasks, _stats = _run([(0.5, 1)])
        assert tasks == [0]
        assert counts == fixed_run[0]


class TestAutoscaledEndToEnd:
    def test_autoscaled_run_matches_fixed_counts_under_chaos(self):
        """The full loop — controller-driven scale-up AND scale-down
        under 1% drops — converges to the fixed run's exact counts."""
        schedule = [(0.0, 1_000.0), (1.0, 8_000.0), (4.0, 1_000.0)]
        total = 22_000
        base = (_config()
                .set(Keys.CHECKPOINT_INTERVAL_SECS, 0.2)
                .set(Keys.METRICS_REPORT_INTERVAL_SECS, 0.25)
                .set(Keys.METRICS_FORWARD_INTERVAL_SECS, 0.25))
        auto_cfg = (base.copy()
                    .set(AKeys.AUTOSCALE_ENABLED, True)
                    .set(AKeys.AUTOSCALE_INTERVAL_SECS, 0.5)
                    .set(AKeys.COOLDOWN_SECS, 2.0)
                    .set(AKeys.QUEUE_HIGH_WATERMARK, 40.0)
                    .set(AKeys.QUEUE_LOW_WATERMARK, 2.0)
                    .set(AKeys.MIN_PARALLELISM, 2)
                    .set(AKeys.MAX_PARALLELISM, 8))
        plan = FaultPlan(link=LinkFaults(drop_rate=0.01))

        results = {}
        for mode, cfg, counts in [("auto", auto_cfg, 2),
                                  ("fixed", base, 8)]:
            cluster = HeronCluster.on_yarn(machines=6, seed=SEED,
                                           fault_plan=plan)
            topology = elastic_wordcount_topology(
                2, counts, schedule=schedule, total_tuples=total,
                count_cost_per_tuple=2e-4, config=cfg)
            handle = cluster.submit_topology(topology)
            handle.wait_until_running()
            cluster.run_for(9.0)
            results[mode] = (_counts(handle), handle.autoscaler_stats())
            handle.kill()

        auto_counts, auto_stats = results["auto"]
        fixed_counts, _ = results["fixed"]
        assert auto_stats["rescales_up"] >= 1
        assert auto_stats["rescales_down"] >= 1
        assert sum(auto_counts.values()) == 2 * total
        assert auto_counts == fixed_counts
