"""Tests for the auto-tuner (the paper's Section V-B future work)."""

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.tuning import AutoTuner
from repro.workloads.wordcount import wordcount_topology

MILLIS = 1e-3


def launch(drain_ms=10.0, pending=10_000, acks=True, parallelism=4):
    cfg = Config()
    cfg.set(Keys.BATCH_SIZE, 500)
    cfg.set(Keys.SAMPLE_CAP, 16)
    cfg.set(Keys.ACKING_ENABLED, acks)
    cfg.set(Keys.ACK_TRACKING, "counted")
    cfg.set(Keys.MAX_SPOUT_PENDING, pending)
    cfg.set(Keys.CACHE_DRAIN_FREQUENCY_MS, drain_ms)
    cluster = HeronCluster.local()
    handle = cluster.submit_topology(
        wordcount_topology(parallelism, corpus_size=1000, config=cfg))
    handle.wait_until_running()
    return cluster, handle


class TestKnobPlumbing:
    def test_set_drain_interval_live(self):
        cluster, handle = launch()
        sm = next(iter(handle._runtime.sms.values()))
        before = handle.sm_totals()["drains"]
        sm.set_drain_interval(1 * MILLIS)
        cluster.run_for(0.5)
        fast_drains = handle.sm_totals()["drains"] - before
        sm.set_drain_interval(50 * MILLIS)
        before = handle.sm_totals()["drains"]
        cluster.run_for(0.5)
        slow_drains = handle.sm_totals()["drains"] - before
        assert fast_drains > 5 * slow_drains

    def test_set_drain_rejects_nonpositive(self):
        _cluster, handle = launch()
        sm = next(iter(handle._runtime.sms.values()))
        with pytest.raises(ValueError):
            sm.set_drain_interval(0.0)

    def test_tuner_reads_current_settings(self):
        cluster, handle = launch(drain_ms=7.0, pending=4321)
        tuner = AutoTuner(handle)
        assert tuner.current_drain == pytest.approx(7 * MILLIS)
        assert tuner.current_pending == 4321

    def test_double_attach_rejected(self):
        _cluster, handle = launch()
        tuner = AutoTuner(handle).attach()
        with pytest.raises(RuntimeError):
            tuner.attach()
        tuner.detach()

    def test_bad_interval_rejected(self):
        _cluster, handle = launch()
        with pytest.raises(ValueError):
            AutoTuner(handle, interval=0.0)


class TestTuningBehaviour:
    def test_recovers_from_tiny_drain_interval(self):
        """Start at 1ms drain (flush-overhead regime): the tuner should
        move the interval up and throughput should improve."""
        cluster, handle = launch(drain_ms=1.0, pending=8_000)
        tuner = AutoTuner(handle, interval=0.5, latency_slo=None).attach()
        cluster.run_for(0.5)
        early = tuner.current_drain
        cluster.run_for(13.0)
        report = tuner.report
        assert tuner.current_drain > early * 2
        first = report.steps[0].throughput_tps
        last_rates = [s.throughput_tps for s in report.steps[-4:]]
        assert max(last_rates) > first * 1.1

    def test_latency_slo_shrinks_pending(self):
        """A huge pending window blows the latency SLO; the tuner must
        shrink it until latency complies."""
        cluster, handle = launch(pending=120_000)
        AutoTuner(handle, interval=0.5, latency_slo=0.050).attach()
        cluster.run_for(12.0)
        stats_before = handle.latency_stats()
        window = (stats_before.count, stats_before.total)
        cluster.run_for(2.0)
        stats_after = handle.latency_stats()
        recent = (stats_after.total - window[1]) / \
            max(stats_after.count - window[0], 1)
        assert recent < 0.075  # near the 50ms SLO, far below the ~600ms start

    def test_grows_pending_with_headroom(self):
        """A tiny window under-utilizes the topology; with latency far
        below SLO and the window binding, the tuner grows it."""
        cluster, handle = launch(pending=1_000)
        tuner = AutoTuner(handle, interval=0.5, latency_slo=0.100).attach()
        cluster.run_for(16.0)
        assert tuner.current_pending > 2_000

    def test_detach_stops_adjustments(self):
        cluster, handle = launch(drain_ms=1.0)
        tuner = AutoTuner(handle, interval=0.5, latency_slo=None).attach()
        cluster.run_for(2.0)
        tuner.detach()
        frozen = tuner.current_drain
        cluster.run_for(3.0)
        assert tuner.current_drain == frozen

    def test_report_describes_trace(self):
        cluster, handle = launch()
        tuner = AutoTuner(handle, interval=0.5).attach()
        cluster.run_for(3.0)
        text = tuner.report.describe()
        assert "auto-tuner trace" in text
        assert len(tuner.report.steps) >= 3
        assert tuner.report.best_throughput > 0
