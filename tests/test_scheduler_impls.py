"""Tests for the Heron Scheduler implementations over the frameworks."""

import pytest

from repro.common.config import Config
from repro.common.errors import SchedulerError
from repro.common.resources import Resource
from repro.common.units import GB
from repro.packing.plan import ContainerPlan, InstancePlan, PackingPlan
from repro.scheduler.base import (KillTopologyRequest,
                                  RestartTopologyRequest, TMASTER_ROLE,
                                  UpdateTopologyRequest)
from repro.scheduler.frameworks import AuroraFramework, YarnFramework
from repro.scheduler.impls import AuroraScheduler, LocalScheduler, \
    YarnScheduler
from repro.simulation.cluster import Cluster
from repro.simulation.events import Simulator

CAP = Resource(cpu=64, ram=128 * GB, disk=1000 * GB)
R1 = Resource(cpu=1, ram=1 * GB)


def inst(component, task):
    return InstancePlan(component, task, R1)


def plan(name="wc", shape=((1, 2), (2, 2))):
    """shape: tuple of (container_id, instance_count)."""
    containers = []
    task = 0
    for cid, count in shape:
        instances = tuple(inst("bolt", task + i) for i in range(count))
        task += count
        containers.append(ContainerPlan(
            cid, instances, Resource(cpu=float(count) + 1, ram=8 * GB)))
    return PackingPlan(name, containers)


def uneven_plan():
    return PackingPlan("wc", [
        ContainerPlan(1, (inst("bolt", 0),), Resource(cpu=2, ram=4 * GB)),
        ContainerPlan(2, (inst("bolt", 1), inst("bolt", 2)),
                      Resource(cpu=3, ram=6 * GB)),
    ])


class RecordingLauncher:
    def __init__(self):
        self.tmasters = []
        self.launched = []  # (container, plan)
        self.stopped = []

    def launch_tmaster(self, container):
        self.tmasters.append(container)

    def launch_container(self, container, container_plan):
        self.launched.append((container, container_plan))

    def stop_container(self, container_id):
        self.stopped.append(container_id)


def make(scheduler_cls, framework_cls):
    sim = Simulator()
    cluster = Cluster.homogeneous(4, CAP)
    framework = framework_cls(sim, cluster)
    launcher = RecordingLauncher()
    scheduler = scheduler_cls()
    scheduler.initialize(Config(), framework, launcher, "wc")
    return sim, cluster, framework, launcher, scheduler


class TestOnSchedule:
    def test_allocates_tmaster_plus_plan_containers(self):
        _sim, _cluster, fw, launcher, scheduler = make(YarnScheduler,
                                                       YarnFramework)
        scheduler.on_schedule(plan())
        assert len(launcher.tmasters) == 1
        assert len(launcher.launched) == 2
        roles = {jc.role for jc in fw.job_containers("wc")}
        assert roles == {TMASTER_ROLE, "container-1", "container-2"}

    def test_double_schedule_rejected(self):
        _sim, _cluster, _fw, _launcher, scheduler = make(YarnScheduler,
                                                         YarnFramework)
        scheduler.on_schedule(plan())
        with pytest.raises(SchedulerError):
            scheduler.on_schedule(plan())

    def test_uninitialized_rejected(self):
        with pytest.raises(SchedulerError):
            YarnScheduler().on_schedule(plan())

    def test_yarn_requests_heterogeneous_sizes(self):
        _sim, _cluster, fw, _launcher, scheduler = make(YarnScheduler,
                                                        YarnFramework)
        scheduler.on_schedule(uneven_plan())
        specs = {jc.role: jc.spec for jc in fw.job_containers("wc")}
        assert specs["container-1"].cpu == 2
        assert specs["container-2"].cpu == 3

    def test_aurora_requests_homogeneous_max(self):
        _sim, _cluster, fw, _launcher, scheduler = make(AuroraScheduler,
                                                        AuroraFramework)
        scheduler.on_schedule(uneven_plan())
        specs = [jc.spec for jc in fw.job_containers("wc")]
        assert all(s == Resource(cpu=3, ram=6 * GB) for s in specs)
        assert len(specs) == 3  # tmaster included, same size


class TestKillRestart:
    def test_on_kill_releases_everything(self):
        _sim, cluster, _fw, launcher, scheduler = make(YarnScheduler,
                                                       YarnFramework)
        scheduler.on_schedule(plan())
        scheduler.on_kill(KillTopologyRequest("wc"))
        assert cluster.provisioned_cores() == 0
        assert sorted(launcher.stopped) == [1, 2]
        assert scheduler.current_plan is None

    def test_kill_wrong_topology_rejected(self):
        _sim, _cluster, _fw, _launcher, scheduler = make(YarnScheduler,
                                                         YarnFramework)
        scheduler.on_schedule(plan())
        with pytest.raises(SchedulerError):
            scheduler.on_kill(KillTopologyRequest("other"))

    def test_restart_single_container(self):
        _sim, _cluster, _fw, launcher, scheduler = make(YarnScheduler,
                                                        YarnFramework)
        scheduler.on_schedule(plan())
        before = dict(launcher.launched)
        scheduler.on_restart(RestartTopologyRequest("wc", container_id=1))
        assert launcher.stopped == [1]
        assert len(launcher.launched) == 3
        fresh_container, fresh_plan = launcher.launched[-1]
        assert fresh_plan.id == 1
        assert fresh_container not in before

    def test_restart_all_containers(self):
        _sim, _cluster, _fw, launcher, scheduler = make(YarnScheduler,
                                                        YarnFramework)
        scheduler.on_schedule(plan())
        scheduler.on_restart(RestartTopologyRequest("wc"))
        assert sorted(launcher.stopped) == [1, 2]
        assert len(launcher.launched) == 4

    def test_restart_before_schedule_rejected(self):
        _sim, _cluster, _fw, _launcher, scheduler = make(YarnScheduler,
                                                         YarnFramework)
        with pytest.raises(SchedulerError):
            scheduler.on_restart(RestartTopologyRequest("wc"))


class TestOnUpdate:
    def test_added_container(self):
        _sim, _cluster, fw, launcher, scheduler = make(YarnScheduler,
                                                       YarnFramework)
        scheduler.on_schedule(plan(shape=((1, 2), (2, 2))))
        new_plan = plan(shape=((1, 2), (2, 2), (3, 2)))
        scheduler.on_update(UpdateTopologyRequest("wc", new_plan))
        roles = {jc.role for jc in fw.job_containers("wc")}
        assert "container-3" in roles
        assert scheduler.current_plan is new_plan

    def test_removed_container(self):
        _sim, cluster, fw, launcher, scheduler = make(YarnScheduler,
                                                      YarnFramework)
        scheduler.on_schedule(plan(shape=((1, 2), (2, 2))))
        new_plan = plan(shape=((1, 2),))
        scheduler.on_update(UpdateTopologyRequest("wc", new_plan))
        roles = {jc.role for jc in fw.job_containers("wc")}
        assert roles == {TMASTER_ROLE, "container-1"}
        assert 2 in launcher.stopped

    def test_changed_container_bounced(self):
        _sim, _cluster, _fw, launcher, scheduler = make(YarnScheduler,
                                                        YarnFramework)
        scheduler.on_schedule(plan(shape=((1, 2), (2, 2))))
        new_plan = plan(shape=((1, 3), (2, 2)))
        scheduler.on_update(UpdateTopologyRequest("wc", new_plan))
        assert 1 in launcher.stopped
        relaunched = [p for _c, p in launcher.launched if p.id == 1]
        assert len(relaunched) == 2  # original + bounce
        assert len(relaunched[-1].instances) == 3


class TestFailureRecovery:
    def test_stateful_yarn_scheduler_recovers(self):
        sim, cluster, fw, launcher, scheduler = make(YarnScheduler,
                                                     YarnFramework)
        scheduler.on_schedule(plan())
        victim = next(jc.container for jc in fw.job_containers("wc")
                      if jc.role == "container-1")
        cluster.fail_container(victim)
        sim.run_for(5.0)
        # Scheduler was notified, allocated a replacement, relaunched.
        roles = {jc.role for jc in fw.job_containers("wc")}
        assert "container-1" in roles
        assert len([1 for _c, p in launcher.launched if p.id == 1]) == 2

    def test_stateless_aurora_scheduler_recovers_via_framework(self):
        sim, cluster, fw, launcher, scheduler = make(AuroraScheduler,
                                                     AuroraFramework)
        scheduler.on_schedule(plan())
        victim = next(jc.container for jc in fw.job_containers("wc")
                      if jc.role == "container-2")
        cluster.fail_container(victim)
        sim.run_for(5.0)
        roles = {jc.role for jc in fw.job_containers("wc")}
        assert "container-2" in roles
        assert len([1 for _c, p in launcher.launched if p.id == 2]) == 2

    def test_tmaster_failure_recovers(self):
        sim, cluster, fw, launcher, scheduler = make(YarnScheduler,
                                                     YarnFramework)
        scheduler.on_schedule(plan())
        victim = next(jc.container for jc in fw.job_containers("wc")
                      if jc.role == TMASTER_ROLE)
        cluster.fail_container(victim)
        sim.run_for(5.0)
        assert len(launcher.tmasters) == 2

    def test_local_scheduler_shape(self):
        _sim, _cluster, _fw, _launcher, scheduler = make(LocalScheduler,
                                                         YarnFramework)
        scheduler.on_schedule(uneven_plan())
        assert scheduler.is_stateful


class TestRestartTmaster:
    """The engine-driven TM failover entry point (DESIGN.md §14)."""

    def test_releases_old_role_and_relaunches(self):
        _sim, _cluster, fw, launcher, scheduler = make(YarnScheduler,
                                                       YarnFramework)
        scheduler.on_schedule(plan())
        old = next(jc.container for jc in fw.job_containers("wc")
                   if jc.role == TMASTER_ROLE)
        scheduler.on_restart_tmaster()
        new = next(jc.container for jc in fw.job_containers("wc")
                   if jc.role == TMASTER_ROLE)
        assert new is not old
        assert launcher.tmasters == [old, new]
        # Exactly one TMASTER_ROLE container exists afterwards.
        roles = [jc.role for jc in fw.job_containers("wc")]
        assert roles.count(TMASTER_ROLE) == 1

    def test_relaunches_even_when_role_already_gone(self):
        """A machine kill takes the TM container with it: the role is
        empty by the time the failover path runs, which must allocate
        rather than release."""
        sim, cluster, fw, launcher, scheduler = make(YarnScheduler,
                                                     YarnFramework)
        scheduler.on_schedule(plan())
        victim = next(jc.container for jc in fw.job_containers("wc")
                      if jc.role == TMASTER_ROLE)
        fw.release("wc", TMASTER_ROLE)
        assert not fw.has_container("wc", TMASTER_ROLE)
        scheduler.on_restart_tmaster()
        assert fw.has_container("wc", TMASTER_ROLE)
        assert len(launcher.tmasters) == 2
        assert launcher.tmasters[-1] is not victim

    def test_requires_schedule_first(self):
        _sim, _cluster, _fw, _launcher, scheduler = make(YarnScheduler,
                                                         YarnFramework)
        with pytest.raises(SchedulerError):
            scheduler.on_restart_tmaster()

    def test_container_lost_stands_down_when_role_refilled(self):
        """Recovery-race guard: if the engine's failover already refilled
        the role by the time the framework's container-lost notification
        arrives, the late notification must be a no-op (not a second
        relaunch)."""
        _sim, _cluster, fw, launcher, scheduler = make(YarnScheduler,
                                                       YarnFramework)
        scheduler.on_schedule(plan())
        assert fw.has_container("wc", TMASTER_ROLE)
        before = len(launcher.tmasters)
        scheduler.container_lost(TMASTER_ROLE, Resource(cpu=1, ram=1 * GB))
        assert len(launcher.tmasters) == before
        assert len(fw.job_containers("wc")) == 3
