"""Tests for the Storm-architecture baseline engine."""

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.baselines.storm.cluster import StormCluster
from repro.baselines.storm.config_keys import StormConfigKeys as StormKeys
from repro.chaos import FaultPlan, LinkFaults, Partition
from repro.common.config import Config
from repro.common.errors import SchedulerError, TopologyError
from repro.workloads.wordcount import wordcount_topology


def storm_config(**overrides):
    cfg = Config()
    cfg.set(Keys.BATCH_SIZE, 50)
    cfg.set(StormKeys.TRANSFER_FLUSH_MS, 2.0)
    for key, value in overrides.items():
        holder = StormKeys if hasattr(StormKeys, key.upper()) else Keys
        cfg.set(getattr(holder, key.upper()), value)
    return cfg


def submit(cluster, parallelism=2, corpus_size=1000, **overrides):
    topology = wordcount_topology(parallelism, corpus_size=corpus_size,
                                  config=storm_config(**overrides))
    return cluster.submit_topology(topology)


class TestStaticResources:
    def test_resources_acquired_at_construction(self):
        cluster = StormCluster(supervisors=3)
        # All slots held before any topology exists.
        assert cluster.cluster.provisioned_cores("storm") == 24

    def test_submission_consumes_slots(self):
        cluster = StormCluster(supervisors=3)
        submit(cluster, num_workers=2)
        assert len(cluster.free_slots) == 1

    def test_insufficient_slots_rejected(self):
        cluster = StormCluster(supervisors=1)
        submit(cluster)  # takes the only slot
        with pytest.raises(SchedulerError, match="slots"):
            topo = wordcount_topology(2, corpus_size=100,
                                      config=storm_config(), name="second")
            cluster.submit_topology(topo)

    def test_kill_frees_slots(self):
        cluster = StormCluster(supervisors=2)
        handle = submit(cluster)
        handle.kill()
        assert len(cluster.free_slots) == 2

    def test_duplicate_name_rejected(self):
        cluster = StormCluster(supervisors=4)
        submit(cluster, num_workers=1)
        with pytest.raises(TopologyError):
            submit(cluster, num_workers=1)


class TestDataFlow:
    def test_tuples_flow(self):
        cluster = StormCluster(supervisors=2)
        handle = submit(cluster)
        cluster.run_for(1.0)
        totals = handle.totals()
        assert totals["emitted"] > 0
        assert totals["executed"] > 0

    def test_words_counted_consistently(self):
        cluster = StormCluster(supervisors=2)
        handle = submit(cluster, parallelism=3, corpus_size=100)
        cluster.run_for(1.0)
        seen = {}
        for key, executor in handle.executors.items():
            if key[0] != "count":
                continue
            for word in executor.user.counts:
                assert word not in seen
                seen[word] = key[1]
        assert len(seen) > 10

    def test_deterministic(self):
        def run():
            cluster = StormCluster(supervisors=2)
            handle = submit(cluster)
            cluster.run_for(1.0)
            return handle.totals()

        assert run() == run()

    def test_no_ack_queues_bounded(self):
        cluster = StormCluster(supervisors=2)
        handle = submit(cluster)
        cluster.run_for(2.0)
        for executor in handle.executors.values():
            assert executor.inbox_len < 3000


class TestStormAcking:
    def test_counted_acks_flow_through_ackers(self):
        cluster = StormCluster(supervisors=2)
        handle = submit(cluster, acking_enabled=True,
                        ack_tracking="counted", max_spout_pending=500)
        cluster.run_for(1.0)
        totals = handle.totals()
        assert totals["acked"] > 0
        assert totals["failed"] == 0
        assert handle.latency_stats().count > 0
        assert sum(a.acks_processed for a in handle.ackers.values()) > 0

    def test_exact_acks_flow(self):
        cluster = StormCluster(supervisors=2)
        handle = submit(cluster, acking_enabled=True, ack_tracking="exact",
                        max_spout_pending=200)
        cluster.run_for(1.0)
        totals = handle.totals()
        assert totals["acked"] > 0
        assert totals["failed"] == 0

    def test_no_ackers_without_acking(self):
        cluster = StormCluster(supervisors=2)
        handle = submit(cluster)
        assert handle.ackers == {}

    def test_max_pending_respected(self):
        cluster = StormCluster(supervisors=2)
        handle = submit(cluster, acking_enabled=True,
                        ack_tracking="counted", max_spout_pending=100)
        cluster.run_for(1.0)
        for key, executor in handle.executors.items():
            if key[0] == "word":
                assert executor.pending <= 100


class TestStormChaos:
    """The chaos engine wraps the Storm baseline's network too, so
    Heron-vs-Storm comparisons can run under identical fault plans."""

    LOSSY = FaultPlan(link=LinkFaults(drop_rate=0.2))

    def _run(self, fault_plan=None, seed=0):
        cluster = StormCluster(supervisors=2, fault_plan=fault_plan,
                               seed=seed)
        handle = submit(cluster, num_workers=2)
        cluster.run_for(1.0)
        return handle.totals(), cluster.chaos_stats()

    def test_clean_cluster_reports_zero_faults(self):
        _totals, stats = self._run()
        assert stats["drops"] == 0.0

    def test_drops_perturb_throughput(self):
        clean, _ = self._run()
        lossy, stats = self._run(self.LOSSY)
        assert stats["drops"] > 0
        assert lossy["executed"] < clean["executed"]

    def test_same_seed_is_deterministic(self):
        assert self._run(self.LOSSY, seed=7) == self._run(self.LOSSY,
                                                          seed=7)

    def test_different_seeds_diverge(self):
        _, stats_a = self._run(self.LOSSY, seed=1)
        _, stats_b = self._run(self.LOSSY, seed=2)
        assert stats_a != stats_b


class TestStormChaosAcked:
    """Closes the ROADMAP debt item: fault injection on the Storm
    baseline exercised through the *acking* path, so Heron-vs-Storm
    recovery comparisons (at-least-once vs effectively-once) run under
    identical fault plans and replay per seed."""

    FAULTS = FaultPlan(
        link=LinkFaults(drop_rate=0.05),
        partitions=(Partition(start=0.3, duration=0.2,
                              machines=frozenset({1})),))

    def _run_acked(self, fault_plan=None, seed=5):
        cluster = StormCluster(supervisors=2, fault_plan=fault_plan,
                               seed=seed)
        handle = submit(cluster, num_workers=2, acking_enabled=True,
                        ack_tracking="counted", num_ackers=1)
        cluster.run_for(2.0)
        return handle.totals(), cluster.chaos_stats()

    def test_acked_run_under_faults_is_deterministic(self):
        first = self._run_acked(self.FAULTS)
        second = self._run_acked(self.FAULTS)
        assert first == second

    def test_faults_hit_the_ack_path(self):
        clean_totals, clean_stats = self._run_acked()
        lossy_totals, lossy_stats = self._run_acked(self.FAULTS)
        assert clean_stats["drops"] == 0.0
        assert lossy_stats["drops"] > 0
        assert lossy_stats["partition_drops"] > 0
        # Storm is at-least-once at best: dropped acks/tuples show up
        # as fewer acked tuples, never as silent corruption.
        assert clean_totals["acked"] > 0
        assert lossy_totals["acked"] < clean_totals["acked"]


class TestSharedJvmContention:
    def test_contention_grows_with_parallelism(self):
        cluster = StormCluster(supervisors=2)
        low = submit(cluster, parallelism=2, num_workers=1)
        high_cluster = StormCluster(supervisors=2)
        high = submit(high_cluster, parallelism=24, num_workers=1)
        assert high.contention > low.contention >= 1.0

    def test_executors_share_worker_process(self):
        cluster = StormCluster(supervisors=1)
        handle = submit(cluster, parallelism=2, num_workers=1)
        locations = [e.location for e in handle.executors.values()]
        assert all(loc.colocated_process(locations[0])
                   for loc in locations)

    def test_heron_outperforms_storm_same_workload(self):
        """The headline claim at small scale: same topology, same cost
        model, Heron's architecture delivers more throughput."""
        from repro.core.heron import HeronCluster

        storm = StormCluster(supervisors=2)
        storm_handle = submit(storm, parallelism=4, num_workers=2)
        storm.run_for(2.0)

        heron = HeronCluster.local()
        topology = wordcount_topology(4, corpus_size=1000,
                                      config=storm_config())
        heron_handle = heron.submit_topology(topology)
        heron_handle.wait_until_running()
        heron.run_for(2.0)

        assert heron_handle.totals()["executed"] > \
            storm_handle.totals()["executed"]
