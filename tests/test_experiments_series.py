"""Tests for the Figure/Series containers and shape-check helpers."""

import pytest

from repro.experiments.series import (Figure, Series, check_monotonic,
                                      check_peak_interior,
                                      check_ratio_band)


def make_figure():
    figure = Figure("Figure X", "test", "x", "y")
    for x, y in ((1, 10.0), (2, 20.0), (3, 30.0)):
        figure.add_point("fast", x, y)
        figure.add_point("slow", x, y / 4)
    return figure


class TestSeries:
    def test_y_at(self):
        series = Series("s", [(1, 10.0), (2, 20.0)])
        assert series.y_at(2) == 20.0
        with pytest.raises(KeyError):
            series.y_at(99)

    def test_xs_ys(self):
        series = Series("s", [(1, 10.0), (2, 20.0)])
        assert series.xs == [1, 2]
        assert series.ys == [10.0, 20.0]

    def test_argmax(self):
        series = Series("s", [(1, 10.0), (2, 50.0), (3, 20.0)])
        assert series.argmax() == 2

    def test_argmax_empty_rejected(self):
        with pytest.raises(ValueError):
            Series("s").argmax()


class TestFigure:
    def test_table_contains_all_points(self):
        table = make_figure().format_table()
        assert "Figure X" in table
        assert "fast" in table and "slow" in table
        assert "30.00" in table and "7.50" in table

    def test_table_handles_missing_points(self):
        figure = Figure("F", "t", "x", "y")
        figure.add_point("a", 1, 1.0)
        figure.add_point("b", 2, 2.0)
        table = figure.format_table()
        assert "-" in table

    def test_csv(self):
        csv = make_figure().to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "x,series,y"
        assert len(lines) == 7

    def test_notes_rendered(self):
        figure = make_figure()
        figure.notes.append("hello note")
        assert "hello note" in figure.format_table()


class TestChecks:
    def test_ratio_band_pass(self):
        check = check_ratio_band(make_figure(), "fast", "slow", 3.5, 4.5,
                                 description="4x")
        assert check.passed

    def test_ratio_band_fail(self):
        check = check_ratio_band(make_figure(), "fast", "slow", 10, 20,
                                 description="10x", slack=0.0)
        assert not check.passed

    def test_ratio_band_slack(self):
        check = check_ratio_band(make_figure(), "fast", "slow", 5.0, 6.0,
                                 description="with slack", slack=0.5)
        assert check.passed  # 4.0 >= 5.0 * 0.5

    def test_ratio_band_no_points(self):
        empty = Figure("F", "t", "x", "y")
        empty.series_for("a")
        empty.series_for("b")
        assert not check_ratio_band(empty, "a", "b", 1, 2,
                                    description="none").passed

    def test_monotonic_increasing(self):
        assert check_monotonic(Series("s", [(1, 1.0), (2, 2.0), (3, 3.0)]),
                               increasing=True, description="up").passed
        assert not check_monotonic(
            Series("s", [(1, 3.0), (2, 2.0)]), increasing=True,
            description="down").passed

    def test_monotonic_tolerates_noise(self):
        series = Series("s", [(1, 100.0), (2, 98.0), (3, 110.0)])
        assert check_monotonic(series, increasing=True, description="noisy",
                               tolerance=0.05).passed

    def test_monotonic_decreasing(self):
        assert check_monotonic(Series("s", [(1, 3.0), (2, 1.0)]),
                               increasing=False, description="down").passed

    def test_peak_interior_pass(self):
        series = Series("s", [(1, 10.0), (2, 50.0), (3, 20.0)])
        assert check_peak_interior(series, description="peak").passed

    def test_peak_at_edge_fails(self):
        series = Series("s", [(1, 50.0), (2, 20.0), (3, 10.0)])
        assert not check_peak_interior(series, description="edge").passed

    def test_peak_too_few_points(self):
        series = Series("s", [(1, 1.0), (2, 2.0)])
        assert not check_peak_interior(series, description="few").passed

    def test_str_format(self):
        check = check_monotonic(Series("s", [(1, 1.0), (2, 2.0)]),
                                increasing=True, description="desc")
        assert str(check).startswith("[PASS] desc")
