"""Sanity tests pinning the cost model's documented orderings.

The calibration narrative in ``repro.simulation.costs`` makes ordinal
claims ("lazy path ≪ full decode", "Storm per-tuple cost exceeds
Heron's instance cost", ...). These tests pin them so a recalibration
cannot silently invert the paper's mechanisms.
"""

import dataclasses

import pytest

from repro.simulation.costs import CostCategory, CostModel, \
    DEFAULT_COST_MODEL


class TestStructure:
    def test_all_costs_nonnegative(self):
        for field in dataclasses.fields(CostModel):
            value = getattr(DEFAULT_COST_MODEL, field.name)
            assert value >= 0, field.name

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_COST_MODEL.sm_route_per_tuple = 0  # type: ignore

    def test_with_overrides(self):
        model = DEFAULT_COST_MODEL.with_overrides(sm_drain_fixed=1.0)
        assert model.sm_drain_fixed == 1.0
        assert DEFAULT_COST_MODEL.sm_drain_fixed != 1.0
        assert model.sm_route_per_tuple == \
            DEFAULT_COST_MODEL.sm_route_per_tuple

    def test_categories(self):
        assert set(CostCategory.ALL) == {"fetch", "user", "engine",
                                         "write"}


class TestPaperOrderings:
    """The inequalities the reproduction's mechanisms rest on."""

    model = DEFAULT_COST_MODEL

    def test_lazy_path_much_cheaper_than_full_decode(self):
        # Section V-A: header parse vs full deserialize + reserialize.
        full = self.model.sm_full_deserialize_per_tuple + \
            self.model.sm_reserialize_per_tuple + \
            self.model.sm_alloc_per_tuple
        assert full > 5 * self.model.sm_route_per_tuple

    def test_storm_per_tuple_framework_cost_exceeds_herons(self):
        # Section III-A: communication work on the processing threads.
        storm = self.model.storm_user_per_tuple + \
            self.model.storm_framework_per_tuple + \
            self.model.storm_serialize_per_tuple
        heron = self.model.instance_emit_per_tuple + \
            self.model.instance_serialize_per_tuple
        assert storm > 2 * heron

    def test_acking_is_substantial_but_not_dominant(self):
        # Figs. 2 vs 4: acks cost about 2-3x of throughput, so the
        # ack-path cost per tuple is of the same order as the data path.
        data_path = self.model.instance_emit_per_tuple + \
            self.model.instance_serialize_per_tuple
        ack_path = self.model.instance_ack_per_tuple
        assert 0.5 * data_path < ack_path < 4 * data_path

    def test_network_distances_ordered(self):
        assert self.model.net_local_process < \
            self.model.net_same_container < \
            self.model.net_same_machine < self.model.net_cross_machine

    def test_drain_overhead_amortizes(self):
        # One drain at the default 10ms interval must be a small
        # fraction of an SM's budget, but dominant at 1ms (Fig. 12).
        per_second_at_10ms = self.model.sm_drain_fixed * 100
        per_second_at_1ms = self.model.sm_drain_fixed * 1000
        assert per_second_at_10ms < 0.05
        assert per_second_at_1ms > 0.15

    def test_batch_overheads_amortize_at_default_batch(self):
        per_tuple_share = self.model.sm_batch_overhead / 1000
        assert per_tuple_share < 0.1 * self.model.sm_route_per_tuple

    def test_acker_op_dominates_storm_ack_path(self):
        # The known Storm bottleneck: acker executors.
        assert self.model.storm_acker_per_op > \
            self.model.storm_ack_emit_per_tuple


class TestConfigSchemas:
    def test_topology_schema_defaults_valid(self):
        from repro.api.config_keys import SCHEMA
        defaults = SCHEMA.defaults()
        SCHEMA.validate(defaults)
        assert len(defaults) > 10

    def test_packing_schema_defaults_valid(self):
        from repro.packing.base import SCHEMA
        SCHEMA.validate(SCHEMA.defaults())

    def test_storm_schema_defaults_valid(self):
        from repro.baselines.storm.config_keys import SCHEMA
        SCHEMA.validate(SCHEMA.defaults())

    def test_every_key_documented(self):
        from repro.api.config_keys import SCHEMA as topo
        from repro.packing.base import SCHEMA as packing
        from repro.baselines.storm.config_keys import SCHEMA as storm
        for schema in (topo, packing, storm):
            for key in schema.keys.values():
                assert key.description, f"{key.name} lacks a description"
