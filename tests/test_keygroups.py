"""Key-group partitioning: formulas, round-trips, routing."""

import pytest

from repro.autoscale import (DEFAULT_KEY_GROUPS, KeyGroupGrouping, group_of,
                             group_range, merge_groups, owner_index,
                             split_groups)
from repro.common.errors import TopologyError


class TestFormulas:
    def test_group_of_is_stable_and_in_range(self):
        for key in ["word", 17, ("a", 2), "café"]:
            group = group_of(key, 128)
            assert group == group_of(key, 128)
            assert 0 <= group < 128

    def test_ranges_partition_the_group_space(self):
        for num_groups in (1, 7, 128, 1000):
            for parallelism in range(1, 10):
                covered = []
                for index in range(parallelism):
                    covered.extend(group_range(num_groups, parallelism,
                                               index))
                assert covered == list(range(num_groups))

    def test_owner_index_inverts_group_range(self):
        """Every group lands in the range of exactly its owner."""
        for num_groups in (1, 7, 128):
            for parallelism in range(1, 10):
                for group in range(num_groups):
                    owner = owner_index(group, num_groups, parallelism)
                    assert group in group_range(num_groups, parallelism,
                                                owner)

    def test_ranges_are_contiguous_and_monotone(self):
        prev_hi = 0
        for index in range(5):
            owned = group_range(128, 5, index)
            assert owned.start == prev_hi
            prev_hi = owned.stop
        assert prev_hi == 128

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            group_range(128, 0, 0)
        with pytest.raises(ValueError):
            group_range(128, 4, 4)
        with pytest.raises(ValueError):
            owner_index(128, 128, 4)


class TestMergeSplit:
    def test_split_of_merge_preserves_every_key_value(self):
        """The property behind every rescale: merge then re-split loses
        nothing, duplicates nothing, and respects group ownership."""
        num_groups = DEFAULT_KEY_GROUPS
        words = [f"word-{i}" for i in range(500)]
        for old_p, new_p in [(2, 6), (6, 3), (3, 1), (1, 8), (4, 4)]:
            per_task = {}
            for index in range(old_p):
                owned = group_range(num_groups, old_p, index)
                state = {}
                for word in words:
                    group = group_of(word, num_groups)
                    if group in owned:
                        state.setdefault(group, {})[word] = len(word)
                per_task[index] = state
            merged = merge_groups(per_task)
            parts = split_groups(merged, num_groups, new_p)
            assert len(parts) == new_p
            seen = {}
            for index, part in enumerate(parts):
                owned = group_range(num_groups, new_p, index)
                for group, kv in part.items():
                    assert group in owned
                    for word, value in kv.items():
                        assert word not in seen
                        seen[word] = value
            assert seen == {word: len(word) for word in words}

    def test_merge_rejects_duplicate_groups(self):
        with pytest.raises(ValueError):
            merge_groups({1: {3: {"a": 1}}, 2: {3: {"b": 2}}})

    def test_split_to_one_task_is_the_merge(self):
        merged = {0: {"a": 1}, 64: {"b": 2}, 127: {"c": 3}}
        (only,) = split_groups(merged, 128, 1)
        assert only == merged


class TestGrouping:
    def _routes(self, grouping, task_ids, words):
        instance = grouping.create(["word"], task_ids)
        return {word: instance.task_for([word]) for word in words}

    def test_routing_agrees_with_state_ownership(self):
        """A key must be routed to the task that owns its key group —
        the invariant that makes rescaled state land where the tuples
        go."""
        grouping = KeyGroupGrouping(["word"], 128)
        task_ids = [11, 5, 9]  # deliberately unsorted
        routes = self._routes(grouping, task_ids,
                              [f"w{i}" for i in range(300)])
        ordered = sorted(task_ids)
        for word, task in routes.items():
            group = group_of(word, 128)
            owner = owner_index(group, 128, len(ordered))
            assert task == ordered[owner]

    def test_same_key_same_task(self):
        grouping = KeyGroupGrouping(["word"], 128)
        words = ["x", "y", "z"]
        assert self._routes(grouping, [1, 2, 3], words) == \
            self._routes(grouping, [1, 2, 3], words)

    def test_split_spreads_represented_count_without_values(self):
        """Sampled batches (no concrete values) spread the count by
        range width so totals stay exact in aggregate."""
        instance = KeyGroupGrouping(["word"], 128).create(["word"],
                                                          [0, 1, 2])
        routes = instance.split([], [], 90)
        assert sum(route[3] for route in routes) == 90

    def test_more_tasks_than_groups_rejected(self):
        grouping = KeyGroupGrouping(["word"], 4)
        with pytest.raises(TopologyError):
            grouping.create(["word"], [1, 2, 3, 4, 5])

    def test_bad_construction_rejected(self):
        with pytest.raises(TopologyError):
            KeyGroupGrouping([])
        with pytest.raises(TopologyError):
            KeyGroupGrouping(["word"], 0)
