"""Hot-key stress workload: Zipf skew shape + chaos recovery scenario."""

from collections import Counter

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.chaos import FaultPlan, LinkFaults
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.workloads.hotkey import (DEFAULT_HOTKEY_CORPUS, ZipfWordSpout,
                                    hotkey_topology)


def _draw(spout_cls=ZipfWordSpout, n=5_000, **kwargs):
    spout = spout_cls(total_tuples=n, **kwargs)
    spout.open(_FakeContext(), None)
    return Counter(spout._word_at(i) for i in range(n))


class _FakeContext:
    """Just enough ComponentContext for open(): task 0, t=0, defaults."""

    component = "word"
    task_id = 0
    parallelism = 1
    config = Config()

    @staticmethod
    def now():
        return 0.0


class TestZipfShape:
    def test_head_dominates(self):
        spout = ZipfWordSpout(total_tuples=1)
        counts = _draw()
        hot = spout.hot_word()
        assert counts[hot] == max(counts.values())
        # Zipf(1.2) over 10k ranks puts >20% of all mass on rank 0.
        assert counts[hot] / sum(counts.values()) > 0.2

    def test_higher_skew_concentrates_more(self):
        mild = _draw(skew=0.8)
        heavy = _draw(skew=2.0)
        top_mild = max(mild.values()) / sum(mild.values())
        top_heavy = max(heavy.values()) / sum(heavy.values())
        assert top_heavy > top_mild

    def test_stream_is_deterministic_per_seed(self):
        assert _draw(seed=4) == _draw(seed=4)
        assert _draw(seed=4) != _draw(seed=5)

    def test_invalid_skew_rejected(self):
        with pytest.raises(ValueError):
            ZipfWordSpout(skew=0.0)

    def test_long_tail_still_sampled(self):
        counts = _draw(n=20_000)
        assert len(counts) > 100  # not everything collapses to the head


def _recovery_config():
    return (Config()
            .set(Keys.ACKING_ENABLED, False)
            .set(Keys.BATCH_SIZE, 50)
            .set(Keys.SAMPLE_CAP, 0)
            .set(Keys.INSTANCES_PER_CONTAINER, 2)
            .set(Keys.CHECKPOINT_ENABLED, True)
            .set(Keys.CHECKPOINT_INTERVAL_SECS, 0.1))


TUPLES_PER_TASK = 2_000
PARALLELISM = 2
SEED = 31


def _run_hotkey(*, fail=False, drop_rate=0.0):
    plan = FaultPlan(link=LinkFaults(drop_rate=drop_rate)) \
        if drop_rate else None
    cluster = HeronCluster.on_yarn(machines=4, seed=SEED,
                                   fault_plan=plan)
    topology = hotkey_topology(PARALLELISM,
                               total_tuples=TUPLES_PER_TASK,
                               rate=5_000.0, config=_recovery_config())
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    if fail:
        cluster.run_for(0.25)
        victim = next(jc for jc in
                      cluster.framework.job_containers(topology.name)
                      if jc.role != "tmaster")
        cluster.cluster.fail_container(victim.container)
    cluster.run_for(4.0)
    counts = Counter()
    for (component, _task), inst in handle._runtime.instances.items():
        if component == "count":
            counts.update(inst.user.counts)
    stats = handle.checkpoint_stats()
    handle.kill()
    return counts, stats


@pytest.fixture(scope="module")
def clean_hotkey_run():
    return _run_hotkey()


class TestHotkeyRecoveryScenario:
    """The chaos recovery scenario: skewed state survives faults."""

    def test_clean_run_counts_every_tuple_once(self, clean_hotkey_run):
        counts, stats = clean_hotkey_run
        assert sum(counts.values()) == TUPLES_PER_TASK * PARALLELISM
        assert stats["restores"] == 0

    def test_hot_key_spreads_over_partial_key_grouping(self,
                                                       clean_hotkey_run):
        counts, _ = clean_hotkey_run
        hot = ZipfWordSpout(total_tuples=1).hot_word()
        assert counts[hot] / sum(counts.values()) > 0.2

    def test_container_failure_recovers_exact_skewed_counts(
            self, clean_hotkey_run):
        clean_counts, _ = clean_hotkey_run
        counts, stats = _run_hotkey(fail=True)
        assert stats["restores"] >= 1
        assert counts == clean_counts

    def test_chaos_drops_plus_failure_still_effectively_once(
            self, clean_hotkey_run):
        clean_counts, _ = clean_hotkey_run
        counts, stats = _run_hotkey(fail=True, drop_rate=0.01)
        assert stats["restores"] >= 1
        assert counts == clean_counts
