"""Tests for the PackingPlan data model."""

import pytest

from repro.common.errors import PackingError
from repro.common.resources import Resource
from repro.packing.plan import ContainerPlan, InstancePlan, PackingPlan

R1 = Resource(cpu=1, ram=100, disk=10)


def container(cid, *instances, headroom=Resource(cpu=1)):
    need = Resource.total(i.resource for i in instances) + headroom
    return ContainerPlan(cid, tuple(instances), need)


def inst(component, task):
    return InstancePlan(component, task, R1)


def simple_plan():
    return PackingPlan("wc", [
        container(1, inst("spout", 0), inst("bolt", 0)),
        container(2, inst("spout", 1), inst("bolt", 1)),
    ])


class TestValidation:
    def test_valid_plan(self):
        plan = simple_plan()
        assert plan.container_count == 2
        assert plan.instance_count == 4

    def test_empty_plan_rejected(self):
        with pytest.raises(PackingError):
            PackingPlan("wc", [])

    def test_no_instances_rejected(self):
        with pytest.raises(PackingError):
            PackingPlan("wc", [container(1)])

    def test_duplicate_container_id_rejected(self):
        with pytest.raises(PackingError):
            PackingPlan("wc", [container(1, inst("s", 0)),
                               container(1, inst("s", 1))])

    def test_duplicate_task_rejected(self):
        with pytest.raises(PackingError):
            PackingPlan("wc", [container(1, inst("s", 0)),
                               container(2, inst("s", 0))])

    def test_container_zero_rejected(self):
        with pytest.raises(PackingError):
            container(0, inst("s", 0))

    def test_overcommitted_container_rejected(self):
        with pytest.raises(PackingError):
            ContainerPlan(1, (inst("s", 0),), Resource(cpu=0.5))

    def test_containers_sorted_by_id(self):
        plan = PackingPlan("wc", [container(2, inst("s", 1)),
                                  container(1, inst("s", 0))])
        assert [c.id for c in plan.containers] == [1, 2]


class TestQueries:
    def test_component_parallelism(self):
        assert simple_plan().component_parallelism() == \
            {"spout": 2, "bolt": 2}

    def test_tasks_of(self):
        assert simple_plan().tasks_of("spout") == [(0, 1), (1, 2)]

    def test_instance_ids(self):
        ids = simple_plan().instance_ids()
        assert "container_1_spout_0" in ids
        assert len(ids) == 4

    def test_container_lookup(self):
        plan = simple_plan()
        assert plan.container(2).id == 2
        with pytest.raises(PackingError):
            plan.container(99)

    def test_matches_topology(self):
        plan = simple_plan()
        assert plan.matches_topology({"spout": 2, "bolt": 2})
        assert not plan.matches_topology({"spout": 3, "bolt": 2})
        assert not plan.matches_topology({"spout": 2})

    def test_total_and_max_resource(self):
        plan = simple_plan()
        assert plan.total_resource.cpu == pytest.approx(6)  # 2*(2+1 headroom)
        assert plan.max_container_resource.cpu == pytest.approx(3)

    def test_describe(self):
        text = simple_plan().describe()
        assert "container 1" in text
        assert "spout[0]" in text


class TestDiff:
    def test_no_changes(self):
        delta = simple_plan().diff(simple_plan())
        assert delta.is_empty

    def test_added_and_removed(self):
        old = simple_plan()
        new = PackingPlan("wc", [
            container(1, inst("spout", 0), inst("bolt", 0)),
            container(3, inst("spout", 1), inst("bolt", 1)),
        ])
        delta = old.diff(new)
        assert [c.id for c in delta.added] == [3]
        assert [c.id for c in delta.removed] == [2]
        assert delta.changed == ()

    def test_changed_contents(self):
        old = simple_plan()
        new = PackingPlan("wc", [
            container(1, inst("spout", 0), inst("bolt", 0), inst("bolt", 2)),
            container(2, inst("spout", 1), inst("bolt", 1)),
        ])
        delta = old.diff(new)
        assert [pair[1].id for pair in delta.changed] == [1]
        assert not delta.added and not delta.removed


class TestSerialization:
    def test_json_roundtrip(self):
        plan = simple_plan()
        assert PackingPlan.from_json(plan.to_json()) == plan

    def test_json_stable(self):
        assert simple_plan().to_json() == simple_plan().to_json()

    def test_equality(self):
        assert simple_plan() == simple_plan()
        other = PackingPlan("wc", [container(1, inst("spout", 0),
                                             inst("bolt", 0)),
                                   container(2, inst("spout", 1))])
        assert simple_plan() != other
