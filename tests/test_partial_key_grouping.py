"""Tests for partial-key (two-choice) grouping and the SVG renderer."""

import collections

import pytest

from repro.api.grouping import FieldsGrouping, PartialKeyGrouping
from repro.common.errors import TopologyError

TASKS = list(range(8))


def words(values):
    return [[w] for w in values]


class TestPartialKeyGrouping:
    def test_key_confined_to_two_tasks(self):
        inst = PartialKeyGrouping(["word"]).create(["word"], TASKS)
        seen = set()
        for _ in range(50):
            routes = inst.split(words(["hot"]), [], 1)
            seen.add(routes[0][0])
        assert 1 <= len(seen) <= 2

    def test_skewed_stream_balanced_better_than_fields(self):
        """90% of tuples share one key: fields grouping melts one task,
        partial-key splits the hot key across its two candidates."""
        stream = ["hot"] * 900 + [f"w{i}" for i in range(100)]

        def max_load(grouping):
            inst = grouping.create(["word"], TASKS)
            load = collections.Counter()
            for word in stream:
                routes = inst.split(words([word]), [], 1)
                load[routes[0][0]] += 1
            return max(load.values())

        fields_max = max_load(FieldsGrouping(["word"]))
        partial_max = max_load(PartialKeyGrouping(["word"]))
        assert partial_max < fields_max * 0.7

    def test_counts_conserved(self):
        inst = PartialKeyGrouping(["word"]).create(["word"], TASKS)
        routes = inst.split(words(["a", "b", "a", "c"]), [], 400)
        assert sum(r[3] for r in routes) == 400

    def test_needs_concrete_values(self):
        inst = PartialKeyGrouping(["word"]).create(["word"], TASKS)
        with pytest.raises(TopologyError):
            inst.split([], [], 10)

    def test_no_fields_rejected(self):
        with pytest.raises(TopologyError):
            PartialKeyGrouping([])

    def test_describe(self):
        assert "PartialKey" in PartialKeyGrouping(["k"]).describe()

    def test_builder_integration(self):
        from repro.api.component import Bolt, Spout
        from repro.api.topology import TopologyBuilder

        class S(Spout):
            outputs = {"default": ["word"]}

            def next_tuple(self, collector):
                collector.emit(["x"])

        class B(Bolt):
            def execute(self, tup, collector):
                pass

        builder = TopologyBuilder("t")
        builder.set_spout("s", S())
        builder.set_bolt("b", B(), parallelism=4) \
            .partial_key_grouping("s", fields=["word"])
        topology = builder.build()
        _name, grouping = topology.downstream("s")[0]
        assert isinstance(grouping, PartialKeyGrouping)

    def test_end_to_end_flow(self):
        from repro.api.component import Bolt
        from repro.api.config_keys import TopologyConfigKeys as Keys
        from repro.api.topology import TopologyBuilder
        from repro.core.heron import HeronCluster
        from repro.workloads.wordcount import WordSpout

        class Counting(Bolt):
            def __init__(self):
                super().__init__()
                self.n = 0

            def execute(self, tup, collector):
                self.n += 1

        builder = TopologyBuilder("pkg")
        builder.set_spout("word", WordSpout(50), parallelism=2)
        builder.set_bolt("count", Counting(), parallelism=4) \
            .partial_key_grouping("word", fields=["word"])
        builder.set_config(Keys.BATCH_SIZE, 50)
        cluster = HeronCluster.local()
        handle = cluster.submit_topology(builder.build())
        handle.wait_until_running()
        cluster.run_for(0.5)
        loads = [inst.user.n for key, inst in
                 handle._runtime.instances.items() if key[0] == "count"]
        assert all(n > 0 for n in loads)
        assert max(loads) < 2.5 * min(loads)


class TestSvgRenderer:
    def make_figure(self):
        from repro.experiments.series import Figure
        figure = Figure("Figure X", "demo", "x", "y")
        figure.add_point("a", 1, 10.0)
        figure.add_point("a", 2, 30.0)
        figure.add_point("b", 1, 5.0)
        figure.add_point("b", 2, 8.0)
        return figure

    def test_renders_valid_svg(self):
        import xml.etree.ElementTree as ET

        from repro.experiments.svg import render_svg
        svg = render_svg(self.make_figure())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert "Figure X" in svg
        assert svg.count("polyline") == 2

    def test_empty_figure_rejected(self):
        from repro.experiments.series import Figure
        from repro.experiments.svg import render_svg
        with pytest.raises(ValueError):
            render_svg(Figure("F", "t", "x", "y"))

    def test_save_svg(self, tmp_path):
        from repro.experiments.svg import save_svg
        out = tmp_path / "fig.svg"
        save_svg(self.make_figure(), out)
        assert out.read_text().startswith("<svg")

    def test_nice_ticks(self):
        from repro.experiments.svg import _nice_ticks
        ticks = _nice_ticks(0, 100)
        assert ticks[0] <= 0 and ticks[-1] >= 100
        assert all(t2 > t1 for t1, t2 in zip(ticks, ticks[1:]))
        degenerate = _nice_ticks(5, 5)
        assert len(degenerate) >= 2
