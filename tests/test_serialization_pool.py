"""Tests for the object memory pool."""

import pytest

from repro.common.errors import SerializationError
from repro.serialization.messages import TupleBatch
from repro.serialization.pool import ObjectPool


class TestAcquireRelease:
    def test_first_acquire_allocates(self):
        pool = ObjectPool(TupleBatch)
        obj = pool.acquire()
        assert isinstance(obj, TupleBatch)
        assert pool.stats.allocations == 1
        assert pool.stats.hits == 0

    def test_release_then_acquire_reuses(self):
        pool = ObjectPool(TupleBatch)
        obj = pool.acquire()
        pool.release(obj)
        again = pool.acquire()
        assert again is obj
        assert pool.stats.hits == 1
        assert pool.stats.allocations == 1

    def test_released_objects_are_scrubbed(self):
        pool = ObjectPool(TupleBatch)
        obj = pool.acquire()
        obj.dest_instance = "stale"
        obj.tuple_ids = [1, 2, 3]
        pool.release(obj)
        again = pool.acquire()
        assert again.dest_instance == ""
        assert again.tuple_ids == []

    def test_custom_reset(self):
        resets = []
        pool = ObjectPool(list, reset=lambda lst: (lst.clear(),
                                                   resets.append(1)))
        obj = pool.acquire()
        obj.append("x")
        pool.release(obj)
        assert pool.acquire() == []
        assert resets == [1]

    def test_object_without_reset_rejected(self):
        pool = ObjectPool(object)
        obj = pool.acquire()
        with pytest.raises(SerializationError):
            pool.release(obj)


class TestCapacity:
    def test_overflow_discarded(self):
        pool = ObjectPool(TupleBatch, capacity=2)
        objs = [pool.acquire() for _ in range(3)]
        for obj in objs:
            pool.release(obj)
        assert pool.free_count == 2
        assert pool.stats.discarded == 1

    def test_zero_capacity_never_reuses(self):
        pool = ObjectPool(TupleBatch, capacity=0)
        obj = pool.acquire()
        pool.release(obj)
        pool.acquire()
        assert pool.stats.hits == 0
        assert pool.stats.allocations == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(SerializationError):
            ObjectPool(TupleBatch, capacity=-1)

    def test_preallocate(self):
        pool = ObjectPool(TupleBatch, capacity=10)
        pool.preallocate(4)
        assert pool.free_count == 4
        pool.acquire()
        assert pool.stats.hits == 1

    def test_preallocate_bounded_by_capacity(self):
        pool = ObjectPool(TupleBatch, capacity=3)
        pool.preallocate(100)
        assert pool.free_count == 3


class TestStats:
    def test_hit_rate(self):
        pool = ObjectPool(TupleBatch)
        first = pool.acquire()
        pool.release(first)
        pool.acquire()
        assert pool.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert ObjectPool(TupleBatch).stats.hit_rate == 0.0

    def test_steady_state_reuse_loop(self):
        """A drain-and-refill loop (the SM pattern) allocates only once."""
        pool = ObjectPool(TupleBatch, capacity=8)
        for _ in range(100):
            obj = pool.acquire()
            obj.values = ["tuple"] * 10
            pool.release(obj)
        assert pool.stats.allocations == 1
        assert pool.stats.hit_rate == pytest.approx(0.99)
