"""Scaling policies (unit) and the ScalingController loop (integration)."""

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.autoscale import (AutoscaleConfigKeys as AKeys, HeadroomPolicy,
                             ScalingSignals, ThresholdPolicy, make_policy)
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.workloads.elastic import elastic_wordcount_topology


def _policy_config(**overrides):
    cfg = (Config()
           .set(AKeys.COOLDOWN_SECS, 5.0)
           .set(AKeys.HYSTERESIS_TICKS, 2)
           .set(AKeys.QUEUE_HIGH_WATERMARK, 60.0)
           .set(AKeys.QUEUE_LOW_WATERMARK, 5.0)
           .set(AKeys.MIN_PARALLELISM, 1)
           .set(AKeys.MAX_PARALLELISM, 16))
    for key, value in overrides.items():
        cfg.set(getattr(AKeys, key), value)
    return cfg


def _signals(time, *, parallelism=2, depth=0.0, arrival=0.0,
             executed=0.0, backpressure=False):
    return ScalingSignals(
        component="count", parallelism=parallelism, queue_depth=depth,
        arrival_rate=arrival, executed_rate=executed,
        in_backpressure=backpressure, time=time)


class TestThresholdPolicy:
    def test_scales_up_only_after_hysteresis_streak(self):
        policy = ThresholdPolicy(_policy_config())
        assert policy.decide(_signals(1.0, depth=100.0)) is None
        assert policy.decide(_signals(2.0, depth=100.0)) == 4

    def test_streak_resets_on_a_calm_tick(self):
        policy = ThresholdPolicy(_policy_config())
        assert policy.decide(_signals(1.0, depth=100.0)) is None
        assert policy.decide(_signals(2.0, depth=30.0)) is None
        assert policy.decide(_signals(3.0, depth=100.0)) is None

    def test_backpressure_counts_as_pressure(self):
        policy = ThresholdPolicy(_policy_config())
        policy.decide(_signals(1.0, backpressure=True))
        assert policy.decide(_signals(2.0, backpressure=True)) == 4

    def test_scales_down_below_low_watermark(self):
        policy = ThresholdPolicy(_policy_config())
        policy.decide(_signals(1.0, parallelism=8, depth=0.0))
        assert policy.decide(_signals(2.0, parallelism=8, depth=0.0)) == 4

    def test_cooldown_blocks_back_to_back_rescales(self):
        policy = ThresholdPolicy(_policy_config())
        policy.decide(_signals(1.0, depth=100.0))
        assert policy.decide(_signals(2.0, depth=100.0)) == 4
        policy.record_rescale("count", 2.0)
        policy.decide(_signals(3.0, parallelism=4, depth=100.0))
        assert policy.decide(
            _signals(4.0, parallelism=4, depth=100.0)) is None
        # After the cooldown window the pressure streak acts again.
        policy.decide(_signals(7.5, parallelism=4, depth=100.0))
        assert policy.decide(
            _signals(8.0, parallelism=4, depth=100.0)) == 8

    def test_clamped_at_max_and_min(self):
        policy = ThresholdPolicy(_policy_config(MAX_PARALLELISM=4,
                                                MIN_PARALLELISM=2))
        policy.decide(_signals(1.0, parallelism=4, depth=100.0))
        assert policy.decide(
            _signals(2.0, parallelism=4, depth=100.0)) is None
        policy.decide(_signals(3.0, parallelism=2, depth=0.0))
        assert policy.decide(
            _signals(4.0, parallelism=2, depth=0.0)) is None


class TestHeadroomPolicy:
    def test_holds_until_capacity_observed(self):
        policy = HeadroomPolicy(_policy_config())
        # Never saturated: no service-rate estimate, no decision.
        assert policy.decide(
            _signals(1.0, arrival=1e6, executed=100.0)) is None
        assert policy.decide(
            _signals(2.0, arrival=1e6, executed=100.0)) is None

    def test_sizes_to_arrival_over_usable_capacity(self):
        policy = HeadroomPolicy(_policy_config(TARGET_HEADROOM=0.5))
        # Saturated ticks: 2 instances executing 200/s => 100/s each;
        # usable per instance = 50/s. Arrival 500/s => need 10.
        policy.decide(_signals(1.0, depth=10.0, arrival=500.0,
                               executed=200.0))
        target = policy.decide(_signals(2.0, depth=10.0, arrival=500.0,
                                        executed=200.0))
        assert target == 10

    def test_scales_down_when_idle_and_oversized(self):
        policy = HeadroomPolicy(_policy_config(TARGET_HEADROOM=0.5))
        for t in (1.0, 2.0):
            policy.decide(_signals(t, parallelism=8, depth=10.0,
                                   arrival=100.0, executed=800.0))
        # Capacity known (100/s each, usable 50/s); arrival 100/s only
        # needs 2 of the 8 instances once queues are empty.
        policy.decide(_signals(3.0, parallelism=8, depth=0.0,
                               arrival=100.0, executed=100.0))
        target = policy.decide(_signals(4.0, parallelism=8, depth=0.0,
                                        arrival=100.0, executed=100.0))
        assert target == 2


class TestMakePolicy:
    def test_known_policies(self):
        assert isinstance(make_policy("threshold", _policy_config()),
                          ThresholdPolicy)
        assert isinstance(make_policy("headroom", _policy_config()),
                          HeadroomPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("magic", _policy_config())


def _autoscaled_config():
    return (Config()
            .set(Keys.ACKING_ENABLED, False)
            .set(Keys.BATCH_SIZE, 50)
            .set(Keys.SAMPLE_CAP, 0)
            .set(Keys.INSTANCES_PER_CONTAINER, 2)
            .set(Keys.CHECKPOINT_ENABLED, True)
            .set(Keys.CHECKPOINT_INTERVAL_SECS, 0.2)
            .set(Keys.METRICS_REPORT_INTERVAL_SECS, 0.25)
            .set(Keys.METRICS_FORWARD_INTERVAL_SECS, 0.25)
            .set(AKeys.AUTOSCALE_ENABLED, True)
            .set(AKeys.AUTOSCALE_INTERVAL_SECS, 0.5)
            .set(AKeys.COOLDOWN_SECS, 2.0)
            .set(AKeys.QUEUE_HIGH_WATERMARK, 40.0)
            .set(AKeys.QUEUE_LOW_WATERMARK, 2.0)
            .set(AKeys.MIN_PARALLELISM, 2)
            .set(AKeys.MAX_PARALLELISM, 8))


class TestControllerIntegration:
    def test_controller_closes_the_loop(self):
        """A saturating ramp makes the controller observe pressure and
        apply a live scale-up through the runtime."""
        topology = elastic_wordcount_topology(
            2, 2, schedule=[(0.0, 1_000.0), (1.0, 10_000.0)],
            total_tuples=20_000, count_cost_per_tuple=2e-4,
            config=_autoscaled_config())
        cluster = HeronCluster.on_yarn(machines=6, seed=11)
        handle = cluster.submit_topology(topology)
        handle.wait_until_running()
        cluster.run_for(5.0)

        controller = handle.autoscaler
        assert controller is not None
        assert controller.ticks > 0
        rows = [r for r in controller.history if r["component"] == "count"]
        assert rows, "controller never observed the count component"
        for row in rows:
            assert set(row) == {"time", "component", "parallelism",
                                "queue_depth", "arrival_rate",
                                "executed_rate", "backpressure"}
        assert controller.rescales_up >= 1
        assert len(handle.physical_plan.task_ids["count"]) > 2
        stats = handle.autoscaler_stats()
        assert stats["rescales"] == len(controller.rescales)
        handle.kill()

    def test_autoscaler_off_by_default(self):
        topology = elastic_wordcount_topology(
            1, 2, schedule=[(0.0, 500.0)], total_tuples=500)
        cluster = HeronCluster.on_yarn(machines=4, seed=3)
        handle = cluster.submit_topology(topology)
        handle.wait_until_running()
        cluster.run_for(1.0)
        assert handle.autoscaler is None
        assert handle.autoscaler_stats()["ticks"] == 0.0
        handle.kill()
