"""End-to-end reliability under injected faults.

The headline guarantees of the chaos PR, pinned as tests:

* on a network dropping 1% of cross-container messages, an acked
  WordCount finishes with *exactly* the lossless run's counts — the
  reliable SM channels retransmit everything the network eats;
* with reliable delivery disabled, the same network measurably loses
  tuples (the counter-factual that proves the channels do something);
* a silently-partitioned Stream Manager is declared dead by the TM's
  heartbeat miss window and its container is relaunched, without the
  cluster substrate ever reporting a failure.
"""

from collections import Counter

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.chaos import FaultPlan, LinkFaults, Partition
from repro.common.config import Config
from repro.common.resources import Resource
from repro.common.units import GB
from repro.core.heron import HeronCluster
from repro.workloads.stateful_wordcount import stateful_wordcount_topology
from repro.workloads.wordcount import wordcount_topology

SEED = 13
TUPLES_PER_TASK = 2000
RATE = 10_000.0


def _bounded_config() -> Config:
    # Full fidelity: every tuple carries its values, so final per-word
    # counts are exact and two runs can be compared word by word.
    return (Config()
            .set(Keys.ACKING_ENABLED, True)
            .set(Keys.ACK_TRACKING, "counted")
            .set(Keys.BATCH_SIZE, 50)
            .set(Keys.SAMPLE_CAP, 0)
            .set(Keys.INSTANCES_PER_CONTAINER, 2))


def _run_bounded(fault_plan=None, reliable=True, post_start=None,
                 machine_resource=None):
    cfg = _bounded_config().set(Keys.RELIABLE_DELIVERY, reliable)
    kwargs = {} if machine_resource is None else \
        {"machine_resource": machine_resource}
    cluster = HeronCluster.on_yarn(machines=4, seed=SEED,
                                   fault_plan=fault_plan, **kwargs)
    topology = stateful_wordcount_topology(
        2, total_tuples=TUPLES_PER_TASK, rate=RATE, config=cfg)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    if post_start is not None:
        post_start(cluster, handle)
    cluster.run_for(3.0)  # emission takes 0.2s; leave retransmit slack
    counts: Counter = Counter()
    for (component, _task), inst in handle._runtime.instances.items():
        if component == "count":
            counts.update(inst.user.counts)
    return {"totals": handle.totals(), "counts": dict(counts),
            "failure_stats": handle.failure_stats(),
            "chaos_stats": cluster.chaos_stats()}


class TestReliableDeliveryUnderLoss:
    def test_one_percent_drop_loses_nothing(self):
        lossless = _run_bounded()
        lossy = _run_bounded(FaultPlan(link=LinkFaults(drop_rate=0.01)))
        assert lossy["chaos_stats"]["drops"] > 0, \
            "fault injection never fired"
        assert lossy["failure_stats"]["retransmits"] > 0, \
            "drops were never repaired"
        assert lossy["counts"] == lossless["counts"]
        assert lossy["totals"]["executed"] == \
            lossless["totals"]["executed"]
        assert lossy["totals"]["acked"] == lossless["totals"]["acked"]

    def test_reliability_disabled_loses_tuples(self):
        lossless = _run_bounded()
        lossy = _run_bounded(FaultPlan(link=LinkFaults(drop_rate=0.02)),
                             reliable=False)
        assert lossy["chaos_stats"]["drops"] > 0
        assert lossy["failure_stats"]["retransmits"] == 0
        assert lossy["totals"]["executed"] < \
            lossless["totals"]["executed"], \
            "unreliable delivery should have lost tuples"

    def test_lossless_run_never_retransmits(self):
        lossless = _run_bounded()
        assert lossless["failure_stats"]["retransmits"] == 0
        assert lossless["totals"]["executed"] == \
            2 * TUPLES_PER_TASK


class TestAsymmetricPartition:
    """One-way cuts: A→B dead while B→A alive (half-open links)."""

    def test_drops_is_directional(self):
        cut = Partition(start=0.0, duration=1.0,
                        machines=frozenset({1}), direction="inbound")
        assert cut.drops(0, 1)          # into the set: dead
        assert not cut.drops(1, 0)      # out of the set: alive
        assert not cut.drops(0, 2)      # neither side named: untouched
        out = Partition(start=0.0, duration=1.0,
                        machines=frozenset({1}), direction="outbound")
        assert out.drops(1, 0)
        assert not out.drops(0, 1)
        both = Partition(start=0.0, duration=1.0,
                         machines=frozenset({1}))
        assert both.drops(0, 1) and both.drops(1, 0)
        assert not both.drops(1, 1)     # same side, even inside the set

    def test_one_way_cut_still_converges(self):
        """An inbound-only cut eats data batches while the victim's own
        acks/heartbeats still flow — the case that fools ack-based
        liveness. The reliable SM channels must retransmit everything
        once the window closes, converging to the lossless counts."""
        # Small machines: one container each, so SM↔SM traffic really
        # crosses machine boundaries for the cut to intercept.
        small = Resource(cpu=6, ram=16 * GB, disk=100 * GB)
        lossless = _run_bounded(machine_resource=small)

        def cut_one_way(cluster, handle):
            # Victim: some SM's machine other than the TM's, so its
            # inbound data dies while its heartbeats keep the TM happy.
            runtime = handle._runtime
            tm_machine = runtime.tmaster.location.machine_id
            victim = next(sm for _cid, sm in sorted(runtime.sms.items())
                          if sm.location.machine_id != tm_machine)
            cluster.chaos.add_partition(Partition(
                start=cluster.now + 0.01, duration=0.4,
                machines=frozenset({victim.location.machine_id}),
                direction="inbound"))

        wounded = _run_bounded(FaultPlan(), post_start=cut_one_way,
                               machine_resource=small)
        assert wounded["chaos_stats"]["partition_drops"] > 0, \
            "the one-way cut never intercepted a message"
        assert wounded["failure_stats"]["retransmits"] > 0, \
            "losses were never repaired"
        assert wounded["counts"] == lossless["counts"]
        assert wounded["totals"]["executed"] == \
            lossless["totals"]["executed"]
        assert wounded["totals"]["acked"] == lossless["totals"]["acked"]


class TestPartitionDetection:
    def test_partitioned_sm_is_relaunched(self):
        """A partition silences one SM without killing anything: only the
        TM's heartbeat miss window can notice. It must declare the SM
        dead, relaunch the container, and traffic must resume after the
        partition heals."""
        cfg = (Config()
               .set(Keys.BATCH_SIZE, 100)
               .set(Keys.SAMPLE_CAP, 16)
               .set(Keys.HEARTBEAT_INTERVAL_SECS, 0.2))
        # Small machines: one container each, so the partition isolates
        # exactly one SM and never the TM.
        cluster = HeronCluster.on_yarn(
            machines=6, machine_resource=Resource(cpu=6, ram=16 * GB,
                                                  disk=100 * GB),
            seed=SEED, fault_plan=FaultPlan())
        handle = cluster.submit_topology(
            wordcount_topology(3, corpus_size=500, config=cfg))
        handle.wait_until_running()
        cluster.run_for(0.5)

        runtime = handle._runtime
        tm_machine = runtime.tmaster.location.machine_id
        victim_cid, victim = next(
            (cid, sm) for cid, sm in sorted(runtime.sms.items())
            if sm.location.machine_id != tm_machine)
        assert cluster.chaos is not None
        partition_start = cluster.now + 0.1
        cluster.chaos.add_partition(Partition(
            start=partition_start, duration=3.0,
            machines=frozenset({victim.location.machine_id})))

        # Detection window: 3 misses x 0.2s; well inside the partition.
        cluster.run_for(2.0)
        tmaster = runtime.tmaster
        assert tmaster.suspected_failures >= 1
        assert tmaster.relaunches_requested >= 1

        # Heal, let the relaunched SM register, and verify traffic.
        cluster.run_for(6.0)
        replacement = runtime.sms[victim_cid]
        assert replacement.alive
        assert replacement is not victim
        before = handle.totals()["executed"]
        cluster.run_for(1.0)
        assert handle.totals()["executed"] > before, \
            "no traffic after partition recovery"
