"""Tests for the checkpointing subsystem (``repro.checkpoint``).

Covers the snapshot codec, the CheckpointStore layout/commit/prune
semantics on both State Manager backends, the coordinator's steady-state
bookkeeping, and — the headline guarantee — the end-to-end
effectively-once test: a stateful WordCount with a mid-run container
failure finishes with *exactly* the failure-free counts when
checkpointing is on, and demonstrably loses state when it is off.
"""

from collections import Counter

import pytest

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.checkpoint import CheckpointStore, decode_state, encode_state
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.statemgr.inmemory import InMemoryStateManager
from repro.statemgr.localfs import LocalFileSystemStateManager
from repro.statemgr.paths import TopologyPaths
from repro.workloads.stateful_wordcount import (StatefulCountBolt,
                                                StatefulWordSpout,
                                                stateful_wordcount_topology)


@pytest.fixture(params=["inmemory", "localfs"])
def statemgr(request, tmp_path):
    if request.param == "inmemory":
        return InMemoryStateManager()
    return LocalFileSystemStateManager(tmp_path / "state")


class TestSnapshotCodec:
    def test_roundtrip(self):
        state = {"offset": 1234, "counts": {"a": 1, "b": 2.5}}
        assert decode_state(encode_state(state)) == state

    def test_none_state_roundtrips(self):
        assert decode_state(encode_state(None)) is None


class TestCheckpointStore:
    def test_epoch_defaults_to_zero(self, statemgr):
        store = CheckpointStore(statemgr, "wc")
        assert store.load_epoch() == 0

    def test_epoch_persists(self, statemgr):
        store = CheckpointStore(statemgr, "wc")
        store.save_epoch(3)
        assert store.load_epoch() == 3
        store.save_epoch(4)  # put() upserts
        assert CheckpointStore(statemgr, "wc").load_epoch() == 4

    def test_commit_and_load(self, statemgr):
        store = CheckpointStore(statemgr, "wc")
        blobs = {("count", 1): encode_state({"a": 2}),
                 ("count", 2): encode_state({"b": 1}),
                 ("word", 3): encode_state({"offset": 10})}
        store.commit(1, blobs, time=0.5)
        assert store.latest_id() == 1
        assert store.load(1) == blobs
        assert store.load_latest() == (1, blobs)

    def test_stateless_tasks_store_nothing(self, statemgr):
        store = CheckpointStore(statemgr, "wc")
        blob = encode_state({})
        store.commit(1, {("count", 1): blob,
                         ("metrics", 9): None}, time=0.1)
        assert set(store.load(1)) == {("count", 1)}
        metadata = store.metadata(1)
        assert metadata == {"id": 1, "time": 0.1,
                            "instances": 2, "stateful": 1,
                            "crc": metadata["crc"]}
        assert set(metadata["crc"]) == {"count/1"}

    def test_uncommitted_tree_is_invisible(self, statemgr):
        store = CheckpointStore(statemgr, "wc")
        paths = TopologyPaths("wc")
        # Blobs written but no commit marker: a coordinator death mid-commit.
        statemgr.put(paths.checkpoint_state(7, "count", 1), b"blob")
        assert store.latest_id() is None
        assert store.committed_ids() == []
        assert store.load_latest() is None

    def test_latest_pointer_fallback_to_scan(self, statemgr):
        store = CheckpointStore(statemgr, "wc")
        store.commit(1, {("count", 1): b"x"}, time=0.1)
        store.commit(2, {("count", 1): b"y"}, time=0.2)
        # A stale pointer (e.g. written by a dying coordinator) must not
        # surface an uncommitted id.
        statemgr.set(TopologyPaths("wc").checkpoints_latest, b"99")
        assert store.latest_id() == 2

    def test_prune_keeps_newest(self, statemgr):
        store = CheckpointStore(statemgr, "wc")
        for checkpoint_id in range(1, 6):
            store.commit(checkpoint_id, {("count", 1): b"x"},
                         time=0.1 * checkpoint_id)
        assert store.committed_ids() == [4, 5]
        assert store.latest_id() == 5
        assert store.load(3) == {}  # pruned

    def test_localfs_commit_survives_restart(self, tmp_path):
        root = tmp_path / "state"
        store = CheckpointStore(LocalFileSystemStateManager(root), "wc")
        store.commit(1, {("count", 1): encode_state({"a": 5})}, time=0.1)
        store.save_epoch(2)
        reloaded = CheckpointStore(LocalFileSystemStateManager(root), "wc")
        assert reloaded.load_epoch() == 2
        checkpoint_id, blobs = reloaded.load_latest()
        assert checkpoint_id == 1
        assert decode_state(blobs[("count", 1)]) == {"a": 5}


# -- integration: coordinator bookkeeping ---------------------------------

def _checkpointing_config(interval=0.1):
    return (Config()
            .set(Keys.ACKING_ENABLED, False)
            .set(Keys.BATCH_SIZE, 100)
            .set(Keys.SAMPLE_CAP, 16)
            .set(Keys.INSTANCES_PER_CONTAINER, 2)
            .set(Keys.CHECKPOINT_ENABLED, True)
            .set(Keys.CHECKPOINT_INTERVAL_SECS, interval))


class TestCoordinatorBookkeeping:
    def test_checkpoints_commit_in_steady_state(self):
        cluster = HeronCluster.on_yarn(machines=4)
        topology = stateful_wordcount_topology(
            2, corpus_size=500, config=_checkpointing_config())
        handle = cluster.submit_topology(topology)
        handle.wait_until_running()
        cluster.run_for(1.0)
        stats = handle.checkpoint_stats()
        assert stats["committed"] >= 5
        assert stats["aborted"] == 0
        assert stats["restores"] == 0

        store = CheckpointStore(cluster.statemgr, topology.name)
        # Pruned to KEEP; the pointer tracks the newest committed id.
        assert len(store.committed_ids()) <= CheckpointStore.KEEP
        assert store.latest_id() == stats["last_committed_id"]
        # Every stateful task has a blob in the committed snapshot.
        _, blobs = store.load_latest()
        assert {component for component, _task in blobs} == {"word", "count"}
        assert len(blobs) == 4  # 2 spouts + 2 bolts
        handle.kill()

    def test_stats_zero_when_disabled(self):
        cluster = HeronCluster.on_yarn(machines=4)
        config = Config().set(Keys.BATCH_SIZE, 100).set(Keys.SAMPLE_CAP, 16)
        handle = cluster.submit_topology(stateful_wordcount_topology(
            2, corpus_size=500, config=config))
        handle.wait_until_running()
        cluster.run_for(0.5)
        stats = handle.checkpoint_stats()
        assert stats["committed"] == 0
        assert stats["restores"] == 0
        handle.kill()


# -- end to end: effectively-once -----------------------------------------

TUPLES_PER_TASK = 3000
RATE = 10_000.0
PARALLELISM = 2
FAIL_AT = 0.15
RUN_FOR = 3.5


def _recovery_config(checkpointing):
    # SAMPLE_CAP 0 = full fidelity, so final counts are exact integers.
    cfg = (Config()
           .set(Keys.ACKING_ENABLED, False)
           .set(Keys.BATCH_SIZE, 50)
           .set(Keys.SAMPLE_CAP, 0)
           .set(Keys.INSTANCES_PER_CONTAINER, 2))
    if checkpointing:
        cfg.set(Keys.CHECKPOINT_ENABLED, True)
        cfg.set(Keys.CHECKPOINT_INTERVAL_SECS, 0.1)
    return cfg


def _run_stream(checkpointing, fail):
    """One bounded stateful-WordCount run; returns (counts, stats)."""
    cluster = HeronCluster.on_yarn(machines=4)
    topology = stateful_wordcount_topology(
        PARALLELISM, total_tuples=TUPLES_PER_TASK, rate=RATE,
        config=_recovery_config(checkpointing))
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    fail_time = -1.0
    if fail:
        cluster.run_for(FAIL_AT)
        victim = next(jc for jc in
                      cluster.framework.job_containers(topology.name)
                      if jc.role != "tmaster")
        fail_time = cluster.now
        cluster.cluster.fail_container(victim.container)
    cluster.run_for(RUN_FOR)
    counts = Counter()
    for (component, _task), inst in handle._runtime.instances.items():
        if component == "count":
            counts.update(inst.user.counts)
    stats = handle.checkpoint_stats()
    return counts, stats, fail_time


@pytest.fixture(scope="module")
def clean_run():
    return _run_stream(checkpointing=True, fail=False)


class TestEffectivelyOnce:
    def test_clean_run_counts_every_tuple_once(self, clean_run):
        counts, stats, _ = clean_run
        assert sum(counts.values()) == TUPLES_PER_TASK * PARALLELISM
        assert stats["restores"] == 0

    def test_failure_with_checkpointing_is_effectively_once(self,
                                                            clean_run):
        clean_counts, _, _ = clean_run
        counts, stats, fail_time = _run_stream(checkpointing=True,
                                               fail=True)
        # The rollback happened...
        assert stats["restores"] == 1
        assert stats["last_restore_at"] > fail_time
        # ...and the final counts are *exactly* the failure-free counts:
        # nothing lost, nothing double-counted.
        assert counts == clean_counts

    def test_failure_without_checkpointing_loses_state(self, clean_run):
        clean_counts, _, _ = clean_run
        counts, stats, _ = _run_stream(checkpointing=False, fail=True)
        assert stats["restores"] == 0
        assert counts != clean_counts
        assert sum(counts.values()) < sum(clean_counts.values())


# -- component-level state hooks ------------------------------------------

class TestStatefulComponents:
    def test_spout_snapshot_is_the_offset(self):
        spout = StatefulWordSpout()
        spout.offset = 42
        assert spout.snapshot_state() == {"offset": 42}
        spout.init_state({"offset": 7})
        assert spout.offset == 7
        spout.init_state(None)
        assert spout.offset == 0

    def test_bolt_snapshot_is_the_counts(self):
        bolt = StatefulCountBolt()
        bolt.counts.update(["a", "a", "b"])
        assert bolt.snapshot_state() == {"a": 2, "b": 1}
        bolt.init_state({"c": 3})
        assert bolt.counts == Counter({"c": 3})
        bolt.init_state(None)
        assert bolt.counts == Counter()

    def test_word_at_offset_is_deterministic(self):
        class _Ctx:
            task_id = 5
            now = staticmethod(lambda: 0.0)
            config = Config().set(Keys.SAMPLE_CAP, 0)

        first, second = StatefulWordSpout(), StatefulWordSpout()
        first.open(_Ctx(), None)
        second.open(_Ctx(), None)
        words = [first._word_at(i) for i in range(50)]
        assert words == [second._word_at(i) for i in range(50)]
