"""Tests for the static task-communication graph (repro.packing.traffic)."""

from repro.api.component import Bolt, Spout
from repro.api.topology import TopologyBuilder
from repro.packing.traffic import TrafficGraph


class _Spout(Spout):
    outputs = {"default": ["key"]}

    def next_tuple(self, collector):
        collector.emit(["x"])


class _Bolt(Bolt):
    outputs = {"default": ["key"]}

    def execute(self, tup, collector):
        pass


def linear_topology(grouping="shuffle", p_src=2, p_dst=3):
    builder = TopologyBuilder("linear")
    builder.set_spout("src", _Spout(), parallelism=p_src)
    declarer = builder.set_bolt("dst", _Bolt(), parallelism=p_dst)
    if grouping == "shuffle":
        declarer.shuffle_grouping("src")
    elif grouping == "fields":
        declarer.fields_grouping("src", ["key"])
    elif grouping == "all":
        declarer.all_grouping("src")
    elif grouping == "global":
        declarer.global_grouping("src")
    return builder.build()


class TestEdgeWeights:
    def test_shuffle_is_uniform_over_pairs(self):
        graph = TrafficGraph(linear_topology("shuffle"))
        # rate(src) = 2 spread over 2*3 pairs.
        for src_task in range(2):
            for dst_task in range(3):
                assert graph.weight(("src", src_task),
                                    ("dst", dst_task)) == 2 / 6

    def test_fields_matches_shuffle_statically(self):
        shuffle = TrafficGraph(linear_topology("shuffle"))
        fields = TrafficGraph(linear_topology("fields"))
        assert shuffle.edges() == fields.edges()

    def test_all_grouping_broadcasts(self):
        graph = TrafficGraph(linear_topology("all"))
        # Every dst task receives each src task's full output (rate 1).
        assert graph.weight(("src", 0), ("dst", 2)) == 1.0
        assert graph.total_weight(("dst", 0)) == 2.0

    def test_global_grouping_lands_on_task_zero(self):
        graph = TrafficGraph(linear_topology("global"))
        assert graph.weight(("src", 0), ("dst", 0)) == 1.0
        assert graph.weight(("src", 0), ("dst", 1)) == 0.0

    def test_graph_is_symmetric(self):
        graph = TrafficGraph(linear_topology())
        a, b = ("src", 0), ("dst", 1)
        assert graph.weight(a, b) == graph.weight(b, a) > 0

    def test_unconnected_tasks_have_zero_weight(self):
        graph = TrafficGraph(linear_topology())
        assert graph.weight(("src", 0), ("src", 1)) == 0.0


class TestRatePropagation:
    def _chain(self):
        builder = TopologyBuilder("chain")
        builder.set_spout("a", _Spout(), parallelism=4)
        builder.set_bolt("b", _Bolt(), parallelism=2) \
            .shuffle_grouping("a")
        builder.set_bolt("c", _Bolt(), parallelism=1) \
            .shuffle_grouping("b")
        return builder.build()

    def test_rates_flow_down_the_dag(self):
        graph = TrafficGraph(self._chain())
        # b's aggregate input (4) becomes its output into c.
        assert graph.total_weight(("c", 0)) == 4.0

    def test_fan_in_sums_inputs(self):
        builder = TopologyBuilder("fanin")
        builder.set_spout("a", _Spout(), parallelism=2)
        builder.set_spout("b", _Spout(), parallelism=3)
        builder.set_bolt("join", _Bolt(), parallelism=1) \
            .shuffle_grouping("a").shuffle_grouping("b")
        graph = TrafficGraph(builder.build())
        assert graph.total_weight(("join", 0)) == 5.0


class TestQueries:
    def test_tasks_follow_declared_order(self):
        graph = TrafficGraph(linear_topology(p_src=2, p_dst=2))
        assert graph.tasks() == [("src", 0), ("src", 1),
                                 ("dst", 0), ("dst", 1)]

    def test_partners_heaviest_first(self):
        graph = TrafficGraph(linear_topology("global", p_src=1, p_dst=2))
        partners = graph.partners(("src", 0))
        assert partners[0] == (("dst", 0), 1.0)

    def test_tasks_by_traffic_is_deterministic(self):
        a = TrafficGraph(linear_topology())
        b = TrafficGraph(linear_topology())
        assert a.tasks_by_traffic() == b.tasks_by_traffic()

    def test_edges_list_each_pair_once(self):
        graph = TrafficGraph(linear_topology(p_src=2, p_dst=2))
        edges = graph.edges()
        assert len(edges) == 4
        assert all(weight > 0 for _, _, weight in edges)

    def test_parallelism_override(self):
        graph = TrafficGraph(linear_topology(p_src=2, p_dst=3),
                             parallelism={"dst": 5})
        assert len([t for t in graph.tasks() if t[0] == "dst"]) == 5
        assert graph.weight(("src", 0), ("dst", 4)) == 2 / 10


class TestMeasuredRates:
    """Measured per-component rates override static unit-rate traffic."""

    def test_measured_rates_rescale_edge_weights(self):
        static = TrafficGraph(linear_topology("shuffle"))
        measured = TrafficGraph(linear_topology("shuffle"),
                                measured_rates={"src": 12.0})
        # 12 tuples/s spread over 2*3 pairs instead of the static 2.
        assert measured.weight(("src", 0), ("dst", 0)) == 12.0 / 6
        assert static.weight(("src", 0), ("dst", 0)) == 2.0 / 6

    def test_measured_rates_propagate_downstream(self):
        builder = TopologyBuilder("chain")
        builder.set_spout("a", _Spout(), parallelism=2)
        builder.set_bolt("b", _Bolt(), parallelism=2) \
            .shuffle_grouping("a")
        builder.set_bolt("c", _Bolt(), parallelism=1) \
            .shuffle_grouping("b")
        graph = TrafficGraph(builder.build(),
                             measured_rates={"a": 10.0})
        # b inherits a's measured 10/s and forwards it into c.
        assert graph.total_weight(("c", 0)) == 10.0

    def test_measured_rate_on_intermediate_overrides_propagation(self):
        builder = TopologyBuilder("chain")
        builder.set_spout("a", _Spout(), parallelism=2)
        builder.set_bolt("b", _Bolt(), parallelism=2) \
            .shuffle_grouping("a")
        builder.set_bolt("c", _Bolt(), parallelism=1) \
            .shuffle_grouping("b")
        graph = TrafficGraph(builder.build(),
                             measured_rates={"a": 10.0, "b": 4.0})
        # b emits a measured 4/s (e.g. a filtering bolt), not its input.
        assert graph.total_weight(("c", 0)) == 4.0

    def test_nonpositive_and_unknown_rates_ignored(self):
        graph = TrafficGraph(linear_topology("shuffle"),
                             measured_rates={"src": 0.0, "ghost": 9.0})
        assert graph.weight(("src", 0), ("dst", 0)) == 2.0 / 6

    def test_resource_manager_stores_positive_rates_only(self):
        from repro.packing.rstorm import RStormPacking
        manager = RStormPacking()
        manager.set_measured_traffic({"src": 5.0, "dst": 0.0,
                                      "neg": -1.0})
        assert manager.measured_traffic == {"src": 5.0}
