"""Documentation quality gate: every public item carries a docstring.

The deliverable promises doc comments on every public API item; this
test enforces it mechanically so regressions cannot slip in.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PRIVATE_PREFIX = "_"


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULES = sorted(iter_modules())


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith(PRIVATE_PREFIX):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere
        yield name, member


class TestDocstrings:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), \
            f"module {module_name} lacks a docstring"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_classes_and_functions_documented(self, module_name):
        module = importlib.import_module(module_name)
        missing = []
        for name, member in public_members(module):
            if not (member.__doc__ and member.__doc__.strip()):
                missing.append(name)
        assert not missing, \
            f"{module_name}: undocumented public items: {missing}"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_methods_documented(self, module_name):
        module = importlib.import_module(module_name)
        missing = []
        for cls_name, cls in public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, method in vars(cls).items():
                if name.startswith(PRIVATE_PREFIX):
                    continue
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # Inherited-contract overrides may rely on the base doc.
                for base in cls.__mro__[1:]:
                    base_method = getattr(base, name, None)
                    if base_method is not None and \
                            getattr(base_method, "__doc__", None):
                        break
                else:
                    missing.append(f"{cls_name}.{name}")
        assert not missing, \
            f"{module_name}: undocumented public methods: {missing}"
